(* Content-addressed on-disk synthesis cache.

   Layout: <root>/r/<fingerprint> for the result tier and
   <root>/w/<key> for the warm tier, where both names are SHA-256 hex
   strings produced by [fingerprint].  Every entry is one file:

     owl-cache <version> <kind> <payload-sha256> <payload-length>\n
     <payload bytes>

   The header makes stale detection cheap and total: a version bump, a
   kind mix-up, a truncation (payload shorter than declared), trailing
   junk (longer), or any bit flip (checksum) all classify the entry as
   stale, which readers treat as a miss.  Payload parsing goes through
   the Term smart constructors, so even a checksum-valid but logically
   stale document (e.g. a width change) is rejected by revalidation.

   Publication is write-to-temp + atomic rename in the same directory,
   so concurrent writers — worker domains of one process or entirely
   separate processes sharing a cache directory — never expose torn
   entries; duplicate solves of the same fingerprint just overwrite each
   other with equally valid files.  All write failures are swallowed: a
   cache that cannot write degrades to a slower run, never a broken
   one. *)

let format_version = 1

type t = {
  root : string;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_stale : int Atomic.t;
  n_writes : int Atomic.t;
}

type counters = { hits : int; misses : int; stale : int; writes : int }

(* Observability mirrors of the per-handle atomics, registered once. *)
let c_hit = Obs.counter "cache.hit"
let c_miss = Obs.counter "cache.miss"
let c_stale = Obs.counter "cache.stale"
let c_write = Obs.counter "cache.write"

let hit c = Atomic.incr c.n_hits; Obs.incr c_hit
let miss c = Atomic.incr c.n_misses; Obs.incr c_miss
let stale c = Atomic.incr c.n_stale; Obs.incr c_stale
let wrote c = Atomic.incr c.n_writes; Obs.incr c_write

let counters c =
  {
    hits = Atomic.get c.n_hits;
    misses = Atomic.get c.n_misses;
    stale = Atomic.get c.n_stale;
    writes = Atomic.get c.n_writes;
  }

let fingerprint doc = Sha256.digest_hex doc

(* Entry names come out of [fingerprint], so anything else is a caller
   bug — and the check keeps [clear] safely confined to files this
   module created. *)
let check_name what name =
  let hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false in
  if name = "" || not (String.for_all hex name) then
    invalid_arg (Printf.sprintf "Owl_cache: %s is not a fingerprint" what)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let result_dir root = Filename.concat root "r"
let warm_dir root = Filename.concat root "w"

let open_dir root =
  mkdir_p (result_dir root);
  mkdir_p (warm_dir root);
  {
    root;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_stale = Atomic.make 0;
    n_writes = Atomic.make 0;
  }

let dir c = c.root

(* {1 Entry I/O} *)

let tmp_counter = Atomic.make 0

let tmp_path dir =
  Filename.concat dir
    (Printf.sprintf "tmp.%d.%d.%d" (Unix.getpid ())
       (Domain.self () :> int)
       (Atomic.fetch_and_add tmp_counter 1))

let write_entry c ~path ~kind payload =
  try
    let tmp = tmp_path (Filename.dirname path) in
    let oc = open_out_bin tmp in
    (try
       Printf.fprintf oc "owl-cache %d %s %s %d\n" format_version kind
         (Sha256.digest_hex payload)
         (String.length payload);
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Unix.rename tmp path;
    wrote c
  with Sys_error _ | Unix.Unix_error _ -> ()

type read_result = Absent | Stale | Entry of string

let read_entry path kind =
  match open_in_bin path with
  | exception Sys_error _ -> Absent
  | ic ->
      let r =
        try
          let header = input_line ic in
          match String.split_on_char ' ' header with
          | [ "owl-cache"; v; k; sha; len ] -> (
              match (int_of_string_opt v, int_of_string_opt len) with
              | Some v, Some len
                when v = format_version && k = kind && len >= 0
                     && len <= in_channel_length ic ->
                  let payload = really_input_string ic len in
                  let trailing =
                    match input_char ic with
                    | _ -> true
                    | exception End_of_file -> false
                  in
                  if trailing || Sha256.digest_hex payload <> sha then Stale
                  else Entry payload
              | _ -> Stale)
          | _ -> Stale
        with End_of_file | Sys_error _ | Failure _ | Invalid_argument _ ->
          Stale
      in
      close_in_noerr ic;
      r

(* Line-oriented payload parsing; any malformation raises and the caller
   classifies the entry as stale. *)
let line_reader payload =
  let len = String.length payload in
  let pos = ref 0 in
  let next () =
    if !pos >= len then failwith "cache entry truncated";
    let i =
      try String.index_from payload !pos '\n'
      with Not_found -> failwith "cache entry truncated"
    in
    let l = String.sub payload !pos (i - !pos) in
    pos := i + 1;
    l
  in
  let rest () = String.sub payload !pos (len - !pos) in
  (next, rest)

let count_of header line =
  match String.split_on_char ' ' line with
  | [ h; n ] when h = header -> (
      match int_of_string_opt n with
      | Some n when n >= 0 && n <= 1_000_000 -> n
      | _ -> failwith "cache entry count out of range")
  | _ -> failwith "cache entry bad section header"

(* Terms ride along as a Term.serialize document occupying the rest of the
   payload; an empty list skips the document entirely (and the count line
   cross-checks the roots actually present). *)
let emit_terms buf count_header ts =
  Buffer.add_string buf
    (Printf.sprintf "%s %d\n" count_header (List.length ts));
  if ts <> [] then Buffer.add_string buf (Term.serialize ts)

let parse_terms next rest count_header =
  let n = count_of count_header (next ()) in
  if n = 0 then []
  else begin
    let ts = Term.deserialize (rest ()) in
    if List.length ts <> n then failwith "cache entry root count mismatch";
    ts
  end

(* {1 Result tier} *)

let result_path c fp = Filename.concat (result_dir c.root) fp

let store_result c ~fp ~bindings ~constraints =
  check_name "result fingerprint" fp;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "bindings %d\n" (List.length bindings));
  List.iter
    (fun (name, v) ->
      if String.contains name ' ' || String.contains name '\n' then
        invalid_arg "Owl_cache.store_result: binding name contains whitespace";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" name (Bitvec.to_string v)))
    bindings;
  emit_terms buf "constraints" constraints;
  write_entry c ~path:(result_path c fp) ~kind:"result" (Buffer.contents buf)

let parse_result payload =
  let next, rest = line_reader payload in
  let n = count_of "bindings" (next ()) in
  let bindings =
    List.init n (fun _ ->
        match String.split_on_char ' ' (next ()) with
        | [ name; v ] -> (name, Bitvec.of_string v)
        | _ -> failwith "cache entry bad binding")
  in
  (bindings, parse_terms next rest "constraints")

let lookup_result c ~fp ~validate =
  check_name "result fingerprint" fp;
  match read_entry (result_path c fp) "result" with
  | Absent ->
      miss c;
      None
  | Stale ->
      stale c;
      None
  | Entry payload -> (
      match parse_result payload with
      | exception _ ->
          stale c;
          None
      | bindings, constraints ->
          let ok = try validate bindings constraints with _ -> false in
          if ok then begin
            hit c;
            Some bindings
          end
          else begin
            (* present but untrustworthy: never a wrong answer, so it
               degrades to a miss and the solve will overwrite it *)
            stale c;
            None
          end)

(* {1 Warm tier} *)

type warm = { exact_fp : string; clauses : int list list; cex : Term.t list }

let warm_path c key = Filename.concat (warm_dir c.root) key

let store_warm c ~key w =
  check_name "warm key" key;
  check_name "warm exact fingerprint" w.exact_fp;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "exact %s\n" w.exact_fp);
  Buffer.add_string buf (Printf.sprintf "clauses %d\n" (List.length w.clauses));
  List.iter
    (fun lits ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int lits));
      Buffer.add_char buf '\n')
    w.clauses;
  emit_terms buf "cex" w.cex;
  write_entry c ~path:(warm_path c key) ~kind:"warm" (Buffer.contents buf)

let parse_warm payload =
  let next, rest = line_reader payload in
  let exact_fp =
    match String.split_on_char ' ' (next ()) with
    | [ "exact"; fp ] ->
        check_name "stored exact fingerprint" fp;
        fp
    | _ -> failwith "cache entry bad exact line"
  in
  let n = count_of "clauses" (next ()) in
  let clauses =
    List.init n (fun _ ->
        let lits =
          List.map
            (fun tok ->
              match int_of_string_opt tok with
              | Some l when l <> 0 -> l
              | _ -> failwith "cache entry bad literal")
            (String.split_on_char ' ' (next ()))
        in
        if lits = [] then failwith "cache entry empty clause";
        lits)
  in
  { exact_fp; clauses; cex = parse_terms next rest "cex" }

let lookup_warm c ~key =
  check_name "warm key" key;
  match read_entry (warm_path c key) "warm" with
  | Absent ->
      miss c;
      None
  | Stale ->
      stale c;
      None
  | Entry payload -> (
      match parse_warm payload with
      | exception _ ->
          stale c;
          None
      | w ->
          hit c;
          Some w)

(* {1 Maintenance} *)

type disk_stats = {
  result_entries : int;
  warm_entries : int;
  total_bytes : int;
}

let is_tmp name =
  String.length name >= 4 && String.sub name 0 4 = "tmp."

let scan dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ([], 0)
  | names ->
      Array.fold_left
        (fun (entries, bytes) name ->
          let path = Filename.concat dir name in
          let size =
            match Unix.stat path with
            | st -> st.Unix.st_size
            | exception Unix.Unix_error _ -> 0
          in
          let entries = if is_tmp name then entries else name :: entries in
          (entries, bytes + size))
        ([], 0) names

let disk_stats c =
  let r, rb = scan (result_dir c.root) in
  let w, wb = scan (warm_dir c.root) in
  {
    result_entries = List.length r;
    warm_entries = List.length w;
    total_bytes = rb + wb;
  }

let clear c =
  let removed = ref 0 in
  let sweep dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            try
              Sys.remove (Filename.concat dir name);
              incr removed
            with Sys_error _ -> ())
          names
  in
  sweep (result_dir c.root);
  sweep (warm_dir c.root);
  !removed

(* {1 In-process LRU (the serve hot tier)}

   A small mutex-guarded LRU keyed by fingerprint strings.  The on-disk
   tiers above survive process restarts but cost a file read, a checksum,
   and a re-validation per hit; a daemon answering the same problem for
   many clients wants repeats to cost a hash lookup and nothing else.
   Classic doubly-linked-list-over-hashtable: find and add are O(1), the
   lock is held for pointer surgery only.  Values are stored as given —
   the hot tier holds already-encoded replies, so no validation happens
   here; anything whose staleness matters belongs in the tiers above. *)

module Lru = struct
  type 'v node = {
    n_key : string;
    mutable n_value : 'v;
    mutable n_prev : 'v node option;  (* toward most recent *)
    mutable n_next : 'v node option;  (* toward least recent *)
  }

  type 'v t = {
    l_capacity : int;
    l_tbl : (string, 'v node) Hashtbl.t;
    mutable l_head : 'v node option;  (* most recently used *)
    mutable l_tail : 'v node option;  (* least recently used *)
    l_mutex : Mutex.t;
    mutable l_hits : int;
    mutable l_misses : int;
    mutable l_evictions : int;
  }

  let c_hot_hit = Obs.counter "cache.hot.hit"
  let c_hot_miss = Obs.counter "cache.hot.miss"
  let c_hot_eviction = Obs.counter "cache.hot.eviction"

  let create ~capacity =
    if capacity < 0 then invalid_arg "Owl_cache.Lru.create: capacity < 0";
    {
      l_capacity = capacity;
      l_tbl = Hashtbl.create (max 16 capacity);
      l_head = None;
      l_tail = None;
      l_mutex = Mutex.create ();
      l_hits = 0;
      l_misses = 0;
      l_evictions = 0;
    }

  let capacity t = t.l_capacity

  (* all list surgery below runs under [l_mutex] *)

  let unlink t n =
    (match n.n_prev with
    | Some p -> p.n_next <- n.n_next
    | None -> t.l_head <- n.n_next);
    (match n.n_next with
    | Some s -> s.n_prev <- n.n_prev
    | None -> t.l_tail <- n.n_prev);
    n.n_prev <- None;
    n.n_next <- None

  let push_front t n =
    n.n_next <- t.l_head;
    n.n_prev <- None;
    (match t.l_head with Some h -> h.n_prev <- Some n | None -> ());
    t.l_head <- Some n;
    if t.l_tail = None then t.l_tail <- Some n

  let locked t f =
    Mutex.lock t.l_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.l_mutex) f

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.l_tbl key with
        | Some n ->
            t.l_hits <- t.l_hits + 1;
            Obs.incr c_hot_hit;
            unlink t n;
            push_front t n;
            Some n.n_value
        | None ->
            t.l_misses <- t.l_misses + 1;
            Obs.incr c_hot_miss;
            None)

  let add t key value =
    if t.l_capacity > 0 then
      locked t (fun () ->
          (match Hashtbl.find_opt t.l_tbl key with
          | Some n ->
              n.n_value <- value;
              unlink t n;
              push_front t n
          | None ->
              let n =
                { n_key = key; n_value = value; n_prev = None; n_next = None }
              in
              Hashtbl.replace t.l_tbl key n;
              push_front t n);
          while Hashtbl.length t.l_tbl > t.l_capacity do
            match t.l_tail with
            | Some victim ->
                unlink t victim;
                Hashtbl.remove t.l_tbl victim.n_key;
                t.l_evictions <- t.l_evictions + 1;
                Obs.incr c_hot_eviction
            | None -> assert false
          done)

  type stats = { hits : int; misses : int; evictions : int; size : int }

  let stats t =
    locked t (fun () ->
        {
          hits = t.l_hits;
          misses = t.l_misses;
          evictions = t.l_evictions;
          size = Hashtbl.length t.l_tbl;
        })
end
