(** The [owl serve] wire protocol: version-stamped, length-prefixed JSON.

    Every message on the wire is one {e frame}: a 4-byte big-endian
    unsigned length followed by exactly that many bytes of UTF-8 JSON.
    Every JSON document is an object carrying the protocol {!version}
    under ["v"] and its kind under ["t"]; a frame whose version does not
    match is rejected with the distinct ["version_skew"] error code, so
    old clients get "upgrade", not "bad request".

    The conversation is strictly client-initiated: the client writes one
    {!request} frame, then reads {!reply} frames until a terminal one
    arrives.  [Progress] replies are non-terminal — a [synth] or [verify]
    request streams zero or more of them before its result; every other
    reply kind terminates the exchange.  Requests on one connection are
    answered in order (the server pipelines at most one in-flight request
    per connection), so no correlation ids are needed.

    Codecs are built on {!Json} (the Owl_obs emitter and strict parser),
    so escaping agrees byte-for-byte with every other JSON the toolchain
    writes.  Decoding never raises: malformed payloads come back as
    [Error {code; message}].  Framing does raise ({!Framing_error}) —
    once the length discipline is broken the stream cannot be resynced. *)

val version : int
(** Protocol version stamped into (and required of) every frame. *)

val max_frame : int
(** Hard cap on payload bytes (16 MiB).  A length prefix above this is a
    {!Framing_error} — it is either corruption or abuse, and reading it
    would let one peer balloon the other's memory. *)

exception Framing_error of string
(** The byte stream violated the framing discipline: EOF inside a prefix
    or payload, or an oversized/negative length prefix.  The connection
    is unrecoverable; close it. *)

(** {1 Addresses} *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this filesystem path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** Parses ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (implying
    [unix:]).  The port in ["tcp:"] splits at the {e last} colon, so IPv6
    literals pass through as the host. *)

val addr_to_string : addr -> string
(** Canonical prefixed form; [addr_of_string] round-trips it. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> unit
(** Writes one frame (prefix + payload), looping over short writes.
    Raises {!Framing_error} if the payload exceeds {!max_frame}, and
    [Unix.Unix_error] as [Unix.write] does (note [EPIPE]: daemon code
    ignores [SIGPIPE] and handles the error instead). *)

val read_frame : Unix.file_descr -> string option
(** Reads one frame, looping over short reads.  [None] on a clean EOF at
    a frame boundary (the peer closed between messages); raises
    {!Framing_error} on EOF mid-frame or a bad length prefix. *)

(** {1 Errors} *)

type error = { code : string; message : string }
(** [code] is machine-readable: ["bad_request"] (unparseable or
    ill-formed payload, invalid options), ["version_skew"] (missing or
    mismatched ["v"]), ["busy"] (admission control; see {!reply}),
    ["unknown_design"], ["timeout"] (the request's deadline expired
    before it reached a solver — at admission or while queued; a deadline
    that expires {e during} solving is a [synth_result] with outcome
    ["timeout"] instead), ["worker_lost"] (the worker domain executing
    the job died and its one re-execution was not possible; safe to
    retry — requests are idempotent by content fingerprint),
    ["cancelled"], ["internal"]. *)

(** {1 Engine options on the wire}

    The flattened form of {!Synth.Engine.options}.  Deserialization pipes
    {!Synth.Engine.default_options} through the [with_*] setters, so the
    builder validation {e is} the wire validation: a request carrying
    [jobs = 0] is rejected with ["bad_request"] exactly as a native
    caller would get [Invalid_argument].  The [cache] field deliberately
    never crosses the wire — which store and hot tier back a request is
    the server's policy, not the client's. *)

val options_to_json : Synth.Engine.options -> string
val options_of_json : Json.value -> (Synth.Engine.options, error) result

(** {1 Requests} *)

type request =
  | Synth of { design : string; options : Synth.Engine.options }
      (** [design] names an entry in the server's case-study registry
          (problem construction stays server-side, where the ISA specs
          live); an unknown name earns an ["unknown_design"] error. *)
  | Verify of { design : string; options : Synth.Engine.options }
  | Cache_stats
  | Ping
  | Metrics
      (** snapshot of the server's live metric registry: counters,
          gauges, histograms, sliding windows *)
  | Dump_trace of { trace : string option }
      (** the server's flight recorder as Chrome trace JSON; with
          [Some id], only events recorded under that trace context —
          one request's span tree *)
  | Shutdown

val request_to_frame : ?trace:string -> request -> string
(** [?trace] stamps a client-chosen trace id into the envelope's
    ["trace"] member; the server adopts it instead of minting one.
    Omitted by default. *)

val request_of_frame : string -> (request, error) result

val trace_of_frame : string -> string option
(** The envelope's ["trace"] member, if present and non-empty.  Total:
    unparseable payloads read as [None].  Works on request and reply
    frames alike — the tolerant peek both ends use, so the trace id rides
    protocol version {!version} unchanged. *)

(** {1 Progress events}

    Streamed to the requesting client while its job runs, sourced from
    the engine's Owl_obs instrumentation through a per-domain tap
    ({!Obs.with_tap}) — the events below mirror the [cegis.instr] /
    [verify.instr] spans and the [resilience.retry] / [resilience.degrade]
    instants. *)

type progress =
  | Instr_started of { instr : string }
  | Instr_done of {
      instr : string;
      status : string;
          (** synthesis: ["solved"]/["skipped"]/["stopped"]; verification:
              the verdict ["verified"]/["violated"]/["inconclusive"] *)
      iterations : int;  (** 0 for verification events *)
      queries : int;
    }
  | Retry of { attempt : int; reason : string }
      (** the resilience ladder re-ran a solver query one rung up *)
  | Degraded of { attempt : int }
      (** the ladder's final rung: fresh one-shot solver *)

(** {1 Results and statistics} *)

val stats_to_json : Synth.Engine.stats -> string
val stats_of_json : Json.value -> (Synth.Engine.stats, error) result

type synth_result = {
  outcome : string;
      (** ["solved"], ["timeout"], ["unrealizable"], ["union_failed"],
          or ["not_independent"] *)
  detail : string;  (** human-readable elaboration; [""] when solved *)
  bindings : (string * string) list;
      (** hole name -> synthesized expression, printed with
          {!Oyster.Printer.expr_to_string} *)
  stats : Synth.Engine.stats;
  hot : bool;  (** answered from the server's in-process hot tier *)
  trace : string;
      (** the request's trace id (server-minted at admission unless the
          client supplied one); [""] from a pre-tracing peer.  Rides the
          reply envelope's ["trace"] member, tolerant both ways. *)
}

type verify_result = {
  verdicts : (string * string) list;
      (** instruction -> ["verified"]/["violated"]/["inconclusive"] *)
  v_hot : bool;
  v_trace : string;  (** as {!synth_result.trace} *)
}

type hot_stats = {
  hot_hits : int;
  hot_misses : int;
  hot_evictions : int;
  hot_size : int;
  hot_capacity : int;
}

type cache_stats = {
  disk : Owl_cache.disk_stats option;  (** [None]: no disk cache open *)
  store : Owl_cache.counters option;
  hot_tier : hot_stats option;  (** [None] outside a server *)
  served : int;  (** requests answered since the server started *)
  rejected : int;  (** requests refused by admission control *)
  uptime_seconds : float;
}

val cache_stats_to_json : cache_stats -> string
(** Also the payload of [owl cache stats --json], so the offline CLI and
    the daemon report cache state in one schema. *)

val cache_stats_of_json : Json.value -> (cache_stats, error) result

(** {1 Replies} *)

type health = {
  workers : int;  (** configured worker domains *)
  workers_alive : int;  (** currently running (supervision respawns) *)
  workers_lost : int;  (** cumulative worker-domain deaths *)
  queue_waiting : int;  (** jobs admitted but not yet running *)
  degraded : bool;  (** shedding solver work right now *)
  cancelled : int;  (** jobs cancelled by client disconnect *)
  shed : int;  (** solver requests answered [Busy] while degraded *)
  timeouts : int;
      (** requests answered ["timeout"] before reaching a solver *)
  degraded_seconds : float;  (** cumulative time spent degraded *)
  uptime_s : float;  (** seconds since the daemon started listening *)
  build : string;  (** server build identifier, e.g. ["owl/1.0.0"] *)
  hot_size : int;  (** hot-tier entries resident right now *)
  hot_capacity : int;  (** hot-tier capacity ([0] = no hot tier) *)
}
(** The [ping] health report — a one-stop liveness probe: worker pool
    state, queue, degradation, uptime, build, and hot-tier occupancy.
    All fields postdate the first protocol-1 servers; a bare old-style
    pong decodes as {!empty_health} (tolerant decode, version
    unchanged). *)

val empty_health : health

type wire_metric = {
  m_name : string;
  m_kind : string;  (** ["counter"], ["gauge"], ["histogram"], ["window"] *)
  m_count : int;  (** counter/gauge value, or number of observations *)
  m_sum : int;
  m_min : int;
  m_max : int;
  m_p50 : int;
  m_p90 : int;
  m_p99 : int;
}
(** One metric as it crosses the wire — the flattened shape of
    {!Obs.metric}, with the kind as a string so new kinds never break an
    old decoder (they pass through and render generically). *)

val wire_metric_of_obs : Obs.metric -> wire_metric

type reply =
  | Progress of progress  (** non-terminal; zero or more per request *)
  | Synth_result of synth_result
  | Verify_result of verify_result
  | Cache_stats_reply of cache_stats
  | Pong of { server : string; protocol : int; health : health }
  | Metrics_reply of wire_metric list
  | Dump_trace_reply of { trace_json : string }
      (** the flight recorder dump: a complete Chrome trace-event JSON
          document carried as a string payload *)
  | Busy of { queue_depth : int }
      (** admission control refused the request: the bounded queue
          already holds [queue_depth] jobs — or the daemon is degraded
          (pool lost, or a planned [shed@N] fault) and is shedding solver
          work.  Back off and retry. *)
  | Err of error
  | Shutdown_ack

val reply_to_frame : reply -> string
val reply_of_frame : string -> (reply, error) result

(** {1 Metric renderings} *)

val metrics_to_prometheus : wire_metric list -> string
(** Prometheus exposition-format text: dots become underscores under an
    [owl_] prefix; counters render with a [_total] suffix, gauges as
    gauges, histograms/windows as summaries ([{quantile="0.5"}] samples
    plus [_sum]/[_count]). *)

val metrics_to_json : wire_metric list -> string
(** The reply's metric list as a standalone JSON array. *)
