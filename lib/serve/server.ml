(* The owl serve daemon.

   One listener (Unix or TCP), one reader systhread per connection, and a
   persistent pool of worker domains ([Pool.Service]) executing synthesis
   and verification jobs.  The division of labor:

   - the {e reader} owns the connection's request stream.  It answers
     control requests (ping, cache stats, shutdown) and hot-tier hits
     inline — neither touches a solver, so neither should wait behind
     one — and enqueues cold work subject to admission control;
   - the {e workers} own the solvers.  Each job runs with [jobs = 1], so
     a request occupies exactly one domain: parallelism comes from
     serving many requests, not from splitting one, and a per-domain
     [Obs] tap attributes the engine's progress events to exactly the
     request that caused them;
   - the {e accept loop} owns the listener.  It blocks in [select] over
     the listen socket and a self-pipe; shutdown writes one byte to the
     pipe, which is the only reliable way to pry a blocked accept open.

   Queueing is two-level for fairness: each connection keeps a FIFO of
   its own pending jobs, and a ready-ring rotates between connections
   that have work.  A worker always takes the head job of the ring's
   head connection, and a connection re-enters the ring only when its
   running job finishes — so one chatty client pipelining hundreds of
   requests interleaves fairly with everyone else instead of occupying
   the whole pool, and one connection's jobs still execute (and answer)
   strictly in order.

   Admission control bounds the {e waiting} jobs: a request is admitted
   while [waiting < queue_depth + idle_workers] (an idle worker will
   take the job immediately, so it never really waits), otherwise the
   reader answers [Busy] without blocking.

   Connection teardown is reference-counted.  The reader holds one
   reference and each queued/running job holds one; the fd closes when
   the count reaches zero with EOF seen.  Closing earlier would be a
   use-after-free in fd space: the kernel recycles descriptor numbers,
   so a worker finishing a job for a closed connection could otherwise
   write its reply into some unrelated, newly-accepted socket.

   Failure handling (see DESIGN.md §13):

   - {e supervision}: an exception escaping a job (the planned
     [worker_kill@N] fault, or anything else run_job fails to contain)
     downs the worker domain via [Pool.Service.Fatal]; the pool respawns
     it.  Before dying, the worker settles the job — re-queued at the
     head of its connection's FIFO exactly once, answered with a typed
     ["worker_lost"] error after that;
   - {e deadlines}: a request whose [deadline_seconds] is already
     unsatisfiable at admission is answered ["timeout"] without a queue
     slot; one that expires while queued is answered ["timeout"] by the
     worker that pulls it, without touching a solver; one that reaches a
     solver gets the deadline that remains after its queue wait;
   - {e cancellation}: the reader seeing EOF (or a write failing, which
     the progress tap notices) flips the job's cancel token.  Queued
     jobs are dropped immediately, their admission slots released; the
     running job is cancelled cooperatively — the engine polls the token
     wherever it checks its deadline;
   - {e degraded mode}: with zero workers alive the daemon still answers
     ping/cache_stats and hot-tier hits, shedding only cold solver work
     with [Busy].  [ping] reports worker capacity, queue depth, and the
     cumulative counters so a load balancer can see all of this. *)

type config = {
  addr : Proto.addr;
  jobs : int;
  queue_depth : int;
  hot_tier_size : int;
  cache : Owl_cache.t option;
  server_name : string;
  telemetry : bool;
  dump_dir : string option;
}

let build_id = "owl-serve/1.0 proto-" ^ string_of_int Proto.version

let c_requests = Obs.counter "serve.requests"
let c_rejected = Obs.counter "serve.rejected"
let c_worker_lost = Obs.counter "serve.worker_lost"
let c_cancelled = Obs.counter "serve.cancelled"
let c_shed = Obs.counter "serve.shed"
let c_timeout = Obs.counter "serve.timeout"

let c_degraded_ms = Obs.counter "serve.degraded_ms"
(* degraded time is a duration, surfaced as [degraded_seconds] in the
   health reply; the Obs counter keeps integer milliseconds *)

let h_job_latency = Obs.histogram "serve.job.latency_us"

let w_job_latency = Obs.window "serve.job.latency_us.1m"
(* the last minute of the same distribution: what `owl top` diffs for
   "p50/p99 right now" against the lifetime histogram above *)

(* levels, refreshed from server state whenever a metrics snapshot is
   taken (so a scrape always sees current depth, not the last change) *)
let g_queue = Obs.gauge "serve.queue_waiting"
let g_inflight = Obs.gauge "serve.inflight"
let g_workers_alive = Obs.gauge "serve.workers_alive"
let g_workers_total = Obs.gauge "serve.workers_total"
let g_hot_size = Obs.gauge "serve.hot_tier.size"

(* what the hot tier stores: finished results with [hot = false]; a hit
   re-flags before replying *)
type cached = C_synth of Proto.synth_result | C_verify of Proto.verify_result

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (* serializes frames: reader replies vs worker progress *)
  jobs_q : job Queue.t;
  mutable busy : bool;  (* a worker is executing this conn's head job *)
  mutable running : job option;  (* the job [busy] refers to, for cancel *)
  mutable in_ring : bool;
  mutable eof : bool;
  mutable refs : int;  (* reader + queued/running jobs *)
  mutable fd_closed : bool;
}

and job = {
  j_kind : [ `Synth | `Verify ];
  j_design : string;
  j_fp : string;
  j_trace : string;  (* minted at admission; follows the job everywhere *)
  j_options : Synth.Engine.options;
  j_conn : conn;
  j_deadline : float option;  (* absolute, fixed at admission *)
  j_cancel : bool Atomic.t;  (* client gone — stop working for it *)
  mutable j_requeued : bool;  (* already survived one worker loss *)
}

type t = {
  cfg : config;
  lookup : [ `Synth | `Verify ] -> string -> Synth.Engine.problem option;
  lock : Mutex.t;
  work_cv : Condition.t;
  ring : conn Queue.t;
  mutable waiting : int;  (* jobs queued but not yet running *)
  mutable inflight : int;  (* jobs currently executing on a worker *)
  mutable idle : int;  (* workers blocked in [pull] *)
  mutable stopping : bool;
  mutable served : int;
  mutable rejected : int;
  mutable cancelled : int;  (* jobs dropped or stopped for a dead client *)
  mutable shed : int;  (* cold solver work refused while degraded *)
  mutable timeouts : int;  (* requests answered "timeout" pre-solver *)
  mutable degraded_since : float option;  (* inside a degraded span *)
  mutable degraded_accum : float;  (* closed degraded spans, seconds *)
  mutable pool : Synth.Pool.Service.t option;  (* set once, right after start *)
  mutable conns : conn list;
  hot : cached Owl_cache.Lru.t;
  started_at : float;
  wake_w : Unix.file_descr;
  trace_ctr : int Atomic.t;  (* next minted trace id suffix *)
  dump_ctr : int Atomic.t;  (* flight-dump filename disambiguator *)
}

(* "t<start-us-low-bits>-<seq>": unique across the daemon's life and
   across daemons that share a pid (sequential in-process test servers) *)
let mint_trace t =
  Printf.sprintf "t%x-%d"
    (int_of_float (t.started_at *. 1e6) land 0xffffff)
    (Atomic.fetch_and_add t.trace_ctr 1)

(* The flight recorder's black-box dump: best-effort, never fails the
   caller — a telemetry path must not take down a serving path. *)
let flight_dump t ~reason =
  match t.cfg.dump_dir with
  | None -> ()
  | Some dir ->
      if Obs.flight_enabled () then begin
        (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
        let file =
          Filename.concat dir
            (Printf.sprintf "owl-flight-%d-%s-%d.json" (Unix.getpid ()) reason
               (Atomic.fetch_and_add t.dump_ctr 1))
        in
        try
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Obs.flight_trace_string ()))
        with Sys_error _ -> ()
      end

let locked m f = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* {1 Connection lifecycle} *)

let release t conn =
  let close_now =
    locked t.lock (fun () ->
        conn.refs <- conn.refs - 1;
        if conn.eof && conn.refs = 0 && not conn.fd_closed then begin
          conn.fd_closed <- true;
          true
        end
        else false)
  in
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* [false] means the peer is unreachable; callers can only shrug — the
   job itself must complete regardless, and teardown is the reader's job.
   Every server-written frame first passes the [Fault.on_frame] chaos
   hook: [conn_drop@N] severs the socket instead of writing (the client
   experiences a mid-exchange hangup; the reader sees EOF and runs the
   normal disconnect path), [frame_delay@N] just stalls the write. *)
let send conn reply =
  locked conn.wlock (fun () ->
      match Fault.on_frame () with
      | Some Fault.Drop_conn ->
          (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ());
          false
      | (Some (Fault.Delay _) | None) as fa -> (
          (match fa with
          | Some (Fault.Delay d) -> Thread.delay d
          | _ -> ());
          match Proto.write_frame conn.fd (Proto.reply_to_frame reply) with
          | () -> true
          | exception (Unix.Unix_error _ | Proto.Framing_error _) -> false))

let bump_served t = locked t.lock (fun () -> t.served <- t.served + 1)

(* {1 Degraded mode} *)

let pool_stats t =
  match t.pool with
  | Some p -> Synth.Pool.Service.stats p
  | None ->
      (* only before [Service.start] returns; nothing has run yet *)
      Synth.Pool.Service.
        { total = t.cfg.jobs; alive = t.cfg.jobs; lost = 0; respawns = 0 }

(* under t.lock: fold the degraded flag into the span accounting.  The
   daemon is degraded while it has no live worker (and is not merely
   shutting down) — it keeps answering control traffic and hot hits but
   sheds cold solver work. *)
let note_degraded t ~alive =
  let degraded = alive = 0 && not t.stopping in
  (match (t.degraded_since, degraded) with
  | None, true ->
      t.degraded_since <- Some (Unix.gettimeofday ());
      (* black-box the moment the pool went dark.  File IO under t.lock,
         but entry into degraded mode is rare and the dump is bounded. *)
      Obs.instant "serve.degraded" ~args:[ ("reason", Obs.Str "no_workers") ];
      flight_dump t ~reason:"degraded"
  | Some s, false ->
      let span = Unix.gettimeofday () -. s in
      t.degraded_accum <- t.degraded_accum +. span;
      t.degraded_since <- None;
      Obs.incr ~by:(int_of_float (span *. 1e3)) c_degraded_ms
  | _ -> ());
  degraded

(* under t.lock *)
let degraded_seconds t =
  t.degraded_accum
  +.
  match t.degraded_since with
  | Some s -> Unix.gettimeofday () -. s
  | None -> 0.0

(* {1 The scheduler} *)

(* under t.lock: a conn with pending jobs is either busy or in the ring *)
let ring_if_ready t conn =
  if (not conn.busy) && (not conn.in_ring) && not (Queue.is_empty conn.jobs_q)
  then begin
    conn.in_ring <- true;
    Queue.push conn t.ring;
    Condition.signal t.work_cv
  end

(* Some Busy/Err reply to send instead, or None if admitted *)
let enqueue t job =
  let conn = job.j_conn in
  locked t.lock (fun () ->
      if t.stopping then
        Some (Proto.Err { code = "internal"; message = "server is shutting down" })
      else if t.waiting >= t.cfg.queue_depth + t.idle then begin
        t.rejected <- t.rejected + 1;
        Obs.incr c_rejected;
        Some (Proto.Busy { queue_depth = t.waiting })
      end
      else begin
        conn.refs <- conn.refs + 1;
        t.waiting <- t.waiting + 1;
        Queue.push job conn.jobs_q;
        ring_if_ready t conn;
        None
      end)

let finish t conn =
  locked t.lock (fun () ->
      conn.busy <- false;
      conn.running <- None;
      t.inflight <- t.inflight - 1;
      ring_if_ready t conn)

(* The reader saw EOF or a dead socket: nothing this connection still
   has queued can ever be answered.  Drop the queued jobs (releasing
   their admission slots and connection references, so other clients
   stop paying for a dead one), and flip the running job's token — the
   engine will notice at its next deadline poll. *)
let cancel_conn t conn =
  let dropped =
    locked t.lock (fun () ->
        conn.eof <- true;
        let n = Queue.length conn.jobs_q in
        Queue.iter (fun j -> Atomic.set j.j_cancel true) conn.jobs_q;
        Queue.clear conn.jobs_q;
        t.waiting <- t.waiting - n;
        t.cancelled <- t.cancelled + n;
        (match conn.running with
        | Some j -> Atomic.set j.j_cancel true
        | None -> ());
        n)
  in
  if dropped > 0 then Obs.incr ~by:dropped c_cancelled;
  for _ = 1 to dropped do
    release t conn
  done

(* {1 Job execution (worker domains)} *)

let find_str key args =
  match List.assoc_opt key args with Some (Obs.Str s) -> Some s | _ -> None

let find_int key args =
  match List.assoc_opt key args with Some (Obs.Int i) -> i | _ -> 0

(* maps the engine's Obs events to wire progress.  [cur] tracks the
   instruction named by the innermost cegis/verify span Begin: the End
   events carry only results, and with [jobs = 1] those spans never nest
   on one domain, so a single cell suffices.  A progress write failing
   is how a worker discovers mid-solve that its client is gone, so it
   flips the job's cancel token — [Obs.with_tap] swallows anything a tap
   raises, which is exactly why cancellation is a polled token and not
   an exception thrown from here. *)
let progress_tap job =
  let conn = job.j_conn in
  let cur = ref "" in
  let emit p =
    if not (send conn (Proto.Progress p)) then Atomic.set job.j_cancel true
  in
  fun ph name args ->
    match (ph, name) with
    | Obs.Begin, ("cegis.instr" | "verify.instr") -> (
        match find_str "instr" args with
        | Some i ->
            cur := i;
            emit (Proto.Instr_started { instr = i })
        | None -> ())
    | Obs.End, "cegis.instr" ->
        emit
          (Proto.Instr_done
             {
               instr = !cur;
               status = Option.value ~default:"unknown" (find_str "status" args);
               iterations = find_int "iterations" args;
               queries = find_int "queries" args;
             })
    | Obs.End, "verify.instr" ->
        emit
          (Proto.Instr_done
             {
               instr = !cur;
               status = Option.value ~default:"unknown" (find_str "verdict" args);
               iterations = 0;
               queries = 0;
             })
    | Obs.Instant, "resilience.retry" ->
        emit
          (Proto.Retry
             {
               attempt = find_int "attempt" args;
               reason = Option.value ~default:"" (find_str "reason" args);
             })
    | Obs.Instant, "resilience.degrade" ->
        emit (Proto.Degraded { attempt = find_int "attempt" args })
    | _ -> ()

let synth_result_of_outcome (o : Synth.Engine.outcome) =
  let r outcome detail stats =
    { Proto.outcome; detail; bindings = []; stats; hot = false; trace = "" }
  in
  match o with
  | Synth.Engine.Solved s ->
      {
        (r "solved" "" s.Synth.Engine.stats) with
        Proto.bindings =
          List.map
            (fun (h, e) -> (h, Oyster.Printer.expr_to_string e))
            s.Synth.Engine.bindings;
      }
  | Synth.Engine.Timeout stats -> r "timeout" "budget or deadline exhausted" stats
  | Synth.Engine.Unrealizable { instr; stats } ->
      r "unrealizable" (Option.value ~default:"" instr) stats
  | Synth.Engine.Union_failed { diagnostic; stats } ->
      r "union_failed" diagnostic stats
  | Synth.Engine.Not_independent { overlapping; stats; _ } ->
      r "not_independent"
        (String.concat ", "
           (List.map (fun (a, b) -> a ^ "/" ^ b) overlapping))
        stats

let verdict_to_string = function
  | Synth.Engine.Verified -> "verified"
  | Synth.Engine.Violated _ -> "violated"
  | Synth.Engine.Inconclusive -> "inconclusive"

(* [options] comes from the caller rather than [job.j_options] because
   the deadline has been rewritten to what remains after the queue wait
   (the engine's clock starts at [synthesize], not at admission) *)
let compute t job options =
  match t.lookup job.j_kind job.j_design with
  | None ->
      Error
        {
          Proto.code = "unknown_design";
          message =
            Printf.sprintf "no registry entry (or reference design) named %S"
              job.j_design;
        }
  | Some problem -> (
      (* the wire options already have jobs = 1 (normalized at admission);
         the disk cache is server policy, attached here *)
      let options = Synth.Engine.with_cache t.cfg.cache options in
      let cancel () = Atomic.get job.j_cancel in
      try
        match job.j_kind with
        | `Synth ->
            let outcome =
              Obs.with_tap (progress_tap job) (fun () ->
                  Synth.Engine.synthesize ~options ~cancel problem)
            in
            Ok (C_synth (synth_result_of_outcome outcome))
        | `Verify ->
            let b = options.Synth.Engine.budget in
            let rcv = options.Synth.Engine.recovery in
            let verdicts =
              Obs.with_tap (progress_tap job) (fun () ->
                  Synth.Engine.verify
                    ?budget:
                      (if b.Synth.Engine.Budget.conflict_budget = max_int then
                         None
                       else Some b.Synth.Engine.Budget.conflict_budget)
                    ?deadline:b.Synth.Engine.Budget.deadline_seconds
                    ~jobs:1
                    ~incremental:options.Synth.Engine.incremental
                    ~retries:rcv.Synth.Engine.Recovery.retries
                    ~escalation_factor:rcv.Synth.Engine.Recovery.escalation_factor
                    ~validate_models:rcv.Synth.Engine.Recovery.validate_models
                    ~cancel problem)
            in
            Ok
              (C_verify
                 {
                   Proto.verdicts =
                     List.map (fun (i, v) -> (i, verdict_to_string v)) verdicts;
                   v_hot = false;
                   v_trace = "";
                 })
      with
      | Synth.Engine.Cancelled ->
          Error
            { Proto.code = "cancelled"; message = "client disconnected" }
      | Synth.Engine.Engine_error m ->
          Error { Proto.code = "internal"; message = m }
      | e ->
          Error { Proto.code = "internal"; message = Printexc.to_string e })

(* hot-tier entries are stored with [hot = false] and an empty trace;
   both are stamped per-request at reply time — the trace id belongs to
   the request being answered, not to the one that populated the tier *)
let reply_of_cached ~hot ~trace = function
  | C_synth r -> Proto.Synth_result { r with Proto.hot; trace }
  | C_verify r -> Proto.Verify_result { r with Proto.v_hot = hot; v_trace = trace }

let rec run_job t job =
  (* the worker-kill chaos hook sits before any real work: an injected
     kill takes exactly the path a worker dying mid-job would — inside
     the serve.job span, so the flight recorder shows the aborted span *)
  Obs.span "serve.job"
    ~args:
      [
        ("design", Obs.Str job.j_design);
        ( "kind",
          Obs.Str (match job.j_kind with `Synth -> "synth" | `Verify -> "verify")
        );
      ]
    (fun () -> run_job_body t job)

and run_job_body t job =
  Fault.on_serve_job ();
  let conn = job.j_conn in
  let t_start = Unix.gettimeofday () in
  let expired =
    match job.j_deadline with
    | Some dl -> Unix.gettimeofday () > dl
    | None -> false
  in
  if Atomic.get job.j_cancel then begin
    (* flipped after this job left the queue; the peer is gone, so there
       is nobody to answer — just account for it *)
    locked t.lock (fun () -> t.cancelled <- t.cancelled + 1);
    Obs.incr c_cancelled
  end
  else if expired then begin
    (* expired while queued: answered without touching a solver *)
    locked t.lock (fun () -> t.timeouts <- t.timeouts + 1);
    Obs.incr c_timeout;
    ignore
      (send conn
         (Proto.Err
            {
              code = "timeout";
              message = "deadline expired while the request was queued";
            }))
  end
  else begin
    (* a duplicate may have been computed while this job sat in the queue *)
    (match Owl_cache.Lru.find t.hot job.j_fp with
    | Some hit ->
        ignore (send conn (reply_of_cached ~hot:true ~trace:job.j_trace hit));
        bump_served t
    | None -> (
        (* the engine restarts its deadline clock now, so hand it only
           what the queue wait left over *)
        let options =
          match job.j_deadline with
          | None -> job.j_options
          | Some dl ->
              Synth.Engine.with_deadline
                (Some (dl -. Unix.gettimeofday ()))
                job.j_options
        in
        match compute t job options with
        | Error e ->
            if e.Proto.code = "cancelled" then begin
              locked t.lock (fun () -> t.cancelled <- t.cancelled + 1);
              Obs.incr c_cancelled
            end;
            ignore (send conn (Proto.Err e))
        | Ok cached ->
            Owl_cache.Lru.add t.hot job.j_fp cached;
            ignore
              (send conn (reply_of_cached ~hot:false ~trace:job.j_trace cached));
            bump_served t));
    if Obs.metrics_enabled () then begin
      let us = int_of_float ((Unix.gettimeofday () -. t_start) *. 1e6) in
      Obs.observe h_job_latency us;
      Obs.observe_window w_job_latency us
    end
  end

(* The executing worker is about to die with this job in hand (it raised
   through [run_job]).  Give the job one second chance: back to the head
   of its connection's FIFO — unless it already had one, or nobody is
   left to read the answer.  When the job is not re-queued it is settled
   right here with a typed, retryable error.  Returns whether the job
   was re-queued (its connection reference then stays live). *)
let settle_lost_job t job =
  let conn = job.j_conn in
  Obs.incr c_worker_lost;
  (* the dying worker's trace context is still installed, so this instant
     lands in the flight recorder tagged with the killed request — then
     the dump snapshots the black box before the domain unwinds *)
  Obs.instant "serve.worker_lost"
    ~args:
      [ ("trace", Obs.Str job.j_trace); ("design", Obs.Str job.j_design) ];
  flight_dump t ~reason:"worker_lost";
  let requeued =
    locked t.lock (fun () ->
        if
          (not job.j_requeued) && (not conn.eof) && (not t.stopping)
          && not (Atomic.get job.j_cancel)
        then begin
          job.j_requeued <- true;
          t.waiting <- t.waiting + 1;
          (* Queue has no push-front; rebuild with the job at the head so
             the connection's answers keep request order *)
          let nq = Queue.create () in
          Queue.push job nq;
          Queue.transfer conn.jobs_q nq;
          Queue.transfer nq conn.jobs_q;
          true
        end
        else false)
  in
  if not requeued then
    ignore
      (send conn
         (Proto.Err
            {
              code = "worker_lost";
              message =
                "the worker executing this request died; safe to retry \
                 (requests are idempotent)";
            }));
  requeued

let pull t () =
  Mutex.lock t.lock;
  let rec wait () =
    match Queue.take_opt t.ring with
    | Some conn -> (
        conn.in_ring <- false;
        match Queue.take_opt conn.jobs_q with
        | None ->
            (* ringed, then its jobs were cancelled by a disconnect *)
            wait ()
        | Some job ->
            conn.busy <- true;
            conn.running <- Some job;
            t.waiting <- t.waiting - 1;
            t.inflight <- t.inflight + 1;
            Mutex.unlock t.lock;
            (* [pull] runs on the worker domain that will execute the
               job, so this is where the request's trace id becomes the
               domain-local context — every span the engine opens from
               here on (pool.service.task included) carries it.  The next
               pull overwrites it; a dying worker keeps it through
               [settle_lost_job]. *)
            Obs.set_trace_context (Some job.j_trace);
            Some
              (fun () ->
                let requeued = ref false in
                Fun.protect
                  ~finally:(fun () ->
                    finish t conn;
                    if not !requeued then release t conn)
                  (fun () ->
                    try run_job t job
                    with e ->
                      requeued := settle_lost_job t job;
                      (* down this worker; the pool respawns it *)
                      raise (Synth.Pool.Service.Fatal e))))
    | None ->
        if t.stopping then begin
          Mutex.unlock t.lock;
          Obs.set_trace_context None;
          None
        end
        else begin
          t.idle <- t.idle + 1;
          Condition.wait t.work_cv t.lock;
          t.idle <- t.idle - 1;
          wait ()
        end
  in
  wait ()

(* {1 Request handling (reader threads)} *)

let cache_stats_now t =
  let hot = Owl_cache.Lru.stats t.hot in
  let served, rejected =
    locked t.lock (fun () -> (t.served, t.rejected))
  in
  {
    Proto.disk = Option.map Owl_cache.disk_stats t.cfg.cache;
    store = Option.map Owl_cache.counters t.cfg.cache;
    hot_tier =
      Some
        {
          Proto.hot_hits = hot.Owl_cache.Lru.hits;
          hot_misses = hot.Owl_cache.Lru.misses;
          hot_evictions = hot.Owl_cache.Lru.evictions;
          hot_size = hot.Owl_cache.Lru.size;
          hot_capacity = Owl_cache.Lru.capacity t.hot;
        };
    served;
    rejected;
    uptime_seconds = Unix.gettimeofday () -. t.started_at;
  }

let health_now t =
  let ps = pool_stats t in
  let hot = Owl_cache.Lru.stats t.hot in
  locked t.lock (fun () ->
      let degraded = note_degraded t ~alive:ps.Synth.Pool.Service.alive in
      {
        Proto.workers = ps.Synth.Pool.Service.total;
        workers_alive = ps.Synth.Pool.Service.alive;
        workers_lost = ps.Synth.Pool.Service.lost;
        queue_waiting = t.waiting;
        degraded;
        cancelled = t.cancelled;
        shed = t.shed;
        timeouts = t.timeouts;
        degraded_seconds = degraded_seconds t;
        uptime_s = Unix.gettimeofday () -. t.started_at;
        build = build_id;
        hot_size = hot.Owl_cache.Lru.size;
        hot_capacity = Owl_cache.Lru.capacity t.hot;
      })

(* refresh the level gauges from live server state, then snapshot the
   whole registry — a scrape reads current depth, not the last change.
   With telemetry off the answer is the empty list, not whatever a
   previous telemetry-on daemon in this process left in the registry *)
let metrics_now t =
  if not t.cfg.telemetry then []
  else
  let ps = pool_stats t in
  let hot = Owl_cache.Lru.stats t.hot in
  locked t.lock (fun () ->
      Obs.set_gauge g_queue t.waiting;
      Obs.set_gauge g_inflight t.inflight);
  Obs.set_gauge g_workers_alive ps.Synth.Pool.Service.alive;
  Obs.set_gauge g_workers_total ps.Synth.Pool.Service.total;
  Obs.set_gauge g_hot_size hot.Owl_cache.Lru.size;
  List.map Proto.wire_metric_of_obs (Obs.metrics ())

let initiate_stop t =
  let fire =
    locked t.lock (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          Condition.broadcast t.work_cv;
          true
        end)
  in
  if fire then
    try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()

let fingerprint kind design options =
  Owl_cache.fingerprint
    (String.concat "\n" [ kind; design; Proto.options_to_json options ])

let handle t conn ~trace (req : Proto.request) =
  Obs.incr c_requests;
  match req with
  | Proto.Ping ->
      ignore
        (send conn
           (Proto.Pong
              {
                server = t.cfg.server_name;
                protocol = Proto.version;
                health = health_now t;
              }));
      bump_served t
  | Proto.Cache_stats ->
      ignore (send conn (Proto.Cache_stats_reply (cache_stats_now t)));
      bump_served t
  | Proto.Metrics ->
      ignore (send conn (Proto.Metrics_reply (metrics_now t)));
      bump_served t
  | Proto.Dump_trace { trace = filter } ->
      ignore
        (send conn
           (Proto.Dump_trace_reply
              { trace_json = Obs.flight_trace_string ?trace:filter () }));
      bump_served t
  | Proto.Shutdown ->
      ignore (send conn Proto.Shutdown_ack);
      bump_served t;
      initiate_stop t
  | Proto.Synth { design; options } | Proto.Verify { design; options } -> (
      let kind = match req with Proto.Synth _ -> `Synth | _ -> `Verify in
      let kind_s = match kind with `Synth -> "synth" | `Verify -> "verify" in
      (* one request, one domain: intra-request parallelism is traded for
         cross-request throughput, and it keeps the progress tap honest *)
      let options = Synth.Engine.with_jobs 1 options in
      let fp = fingerprint kind_s design options in
      match Owl_cache.Lru.find t.hot fp with
      | Some hit ->
          ignore (send conn (reply_of_cached ~hot:true ~trace hit));
          bump_served t
      | None -> (
          (* cold solver work from here on: deadline sanity, degraded-mode
             shedding, then admission.  Control requests and hot hits never
             reach any of these. *)
          let dl =
            options.Synth.Engine.budget.Synth.Engine.Budget.deadline_seconds
          in
          match dl with
          | Some d when d <= 0.0 ->
              (* unsatisfiable before it starts: no queue slot consumed *)
              locked t.lock (fun () -> t.timeouts <- t.timeouts + 1);
              Obs.incr c_timeout;
              ignore
                (send conn
                   (Proto.Err
                      {
                        code = "timeout";
                        message =
                          Printf.sprintf
                            "deadline_seconds = %g is already unsatisfiable"
                            d;
                      }))
          | _ ->
              let alive = (pool_stats t).Synth.Pool.Service.alive in
              let shed =
                locked t.lock (fun () ->
                    let degraded = note_degraded t ~alive in
                    let shed = Fault.on_admit () || degraded in
                    if shed then begin
                      t.shed <- t.shed + 1;
                      t.rejected <- t.rejected + 1
                    end;
                    shed)
              in
              if shed then begin
                Obs.incr c_shed;
                Obs.incr c_rejected;
                ignore (send conn (Proto.Busy { queue_depth = t.waiting }))
              end
              else begin
                let job =
                  {
                    j_kind = kind;
                    j_design = design;
                    j_fp = fp;
                    j_trace = trace;
                    j_options = options;
                    j_conn = conn;
                    j_deadline =
                      Option.map (fun d -> Unix.gettimeofday () +. d) dl;
                    j_cancel = Atomic.make false;
                    j_requeued = false;
                  }
                in
                match enqueue t job with
                | None -> ()
                | Some reply -> ignore (send conn reply)
              end))

let reader t conn () =
  let rec loop () =
    match Proto.read_frame conn.fd with
    | None -> ()
    | Some payload ->
        (match Proto.request_of_frame payload with
        | Ok req ->
            (* admission is where the request's identity is fixed: adopt
               the client's trace id if it sent one, mint one otherwise *)
            let trace =
              match Proto.trace_of_frame payload with
              | Some id -> id
              | None -> mint_trace t
            in
            handle t conn ~trace req
        | Error e -> ignore (send conn (Proto.Err e)));
        loop ()
    | exception Proto.Framing_error _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  cancel_conn t conn;
  release t conn

(* {1 Listener} *)

let resolve_inet host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let listen_on = function
  | Proto.Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with e -> Unix.close fd; raise e);
      fd
  | Proto.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (resolve_inet host, port));
         Unix.listen fd 64
       with e -> Unix.close fd; raise e);
      fd

let run ?(ready = fun () -> ()) cfg ~lookup =
  if cfg.jobs < 1 then invalid_arg "Server.run: jobs < 1";
  if cfg.queue_depth < 0 then invalid_arg "Server.run: queue_depth < 0";
  (* a peer that disappears mid-reply must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = listen_on cfg.addr in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      cfg;
      lookup;
      lock = Mutex.create ();
      work_cv = Condition.create ();
      ring = Queue.create ();
      waiting = 0;
      inflight = 0;
      idle = 0;
      stopping = false;
      served = 0;
      rejected = 0;
      cancelled = 0;
      shed = 0;
      timeouts = 0;
      degraded_since = None;
      degraded_accum = 0.0;
      pool = None;
      conns = [];
      hot = Owl_cache.Lru.create ~capacity:cfg.hot_tier_size;
      started_at = Unix.gettimeofday ();
      wake_w;
      trace_ctr = Atomic.make 0;
      dump_ctr = Atomic.make 0;
    }
  in
  (* live telemetry: the metric registry plus the always-on flight
     recorder, for the daemon's whole life.  [telemetry = false] is the
     measured-overhead baseline — both stay null sinks. *)
  if cfg.telemetry then begin
    Obs.enable_metrics ();
    Obs.enable_flight ()
  end;
  let pool = Synth.Pool.Service.start ~jobs:cfg.jobs ~pull:(pull t) in
  t.pool <- Some pool;
  ready ();
  let threads = ref [] in
  let rec accept_loop () =
    match Unix.select [ listen_fd; wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | readable, _, _ ->
        if List.mem wake_r readable then () (* shutdown *)
        else begin
          (if List.mem listen_fd readable then
             match Unix.accept listen_fd with
             | exception Unix.Unix_error _ -> ()
             | fd, _ ->
                 let conn =
                   {
                     fd;
                     wlock = Mutex.create ();
                     jobs_q = Queue.create ();
                     busy = false;
                     running = None;
                     in_ring = false;
                     eof = false;
                     refs = 1;
                     fd_closed = false;
                   }
                 in
                 locked t.lock (fun () -> t.conns <- conn :: t.conns);
                 threads := Thread.create (reader t conn) () :: !threads);
          accept_loop ()
        end
  in
  accept_loop ();
  (* teardown order matters: stop accepting, drain the queue (workers
     retire once the ring runs dry), then wake any reader still blocked
     in read so it can release its reference and close its fd *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match cfg.addr with
  | Proto.Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Proto.Tcp _ -> ());
  Synth.Pool.Service.join pool;
  locked t.lock (fun () ->
      List.iter
        (fun conn ->
          if not conn.fd_closed then
            try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
        t.conns);
  List.iter Thread.join !threads;
  (* stop recording (accumulated metric values persist for at_exit
     summaries; the flight rings are dropped) so a telemetry-off run
     started later in the same process really is off *)
  if cfg.telemetry then begin
    Obs.disable_flight ();
    Obs.disable_metrics ()
  end;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
