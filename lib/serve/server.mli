(** The [owl serve] daemon: a long-lived synthesis service.

    Listens on a Unix or TCP socket, speaks the versioned {!Proto} wire
    protocol, and multiplexes client requests onto a persistent pool of
    worker domains ({!Pool.Service}).  Three mechanisms shape latency:

    - {b Admission control.}  At most [queue_depth] jobs may wait (jobs
      an idle worker would take immediately do not count); a request
      beyond that is answered [Busy] instead of queued, so clients see
      backpressure in bounded time rather than an unbounded queue.
    - {b Fairness.}  Each connection's work executes strictly in order,
      and a ready-ring round-robins across connections with pending
      work — a client pipelining many requests shares the pool fairly
      with everyone else.
    - {b A hot tier.}  An in-process LRU ({!Owl_cache.Lru}) in front of
      the optional on-disk {!Owl_cache} maps request fingerprints
      (kind + design + canonical options JSON) to finished results.
      Repeat problems are answered by the connection's reader thread
      with [hot = true], touching neither a solver nor the disk.

    Each admitted job runs with [jobs = 1] on one worker domain —
    parallelism comes from serving requests concurrently, not from
    splitting one — and streams {!Proto.progress} events to its client
    through a per-domain {!Obs.with_tap} over the engine's existing
    instrumentation.  Per-request deadlines and budgets arrive in the
    request's options and flow through the engine's budget machinery
    unchanged. *)

type config = {
  addr : Proto.addr;
  jobs : int;  (** worker domains; must be [>= 1] *)
  queue_depth : int;
      (** max jobs waiting beyond what idle workers absorb; [0] means
          a request is admitted only when a worker is free *)
  hot_tier_size : int;  (** LRU capacity; [0] disables the hot tier *)
  cache : Owl_cache.t option;
      (** on-disk cache attached to every job's engine options *)
  server_name : string;  (** reported in [Pong] replies *)
  telemetry : bool;
      (** enable live telemetry for the daemon's lifetime: the metric
          registry (counters, gauges, the latency window served by the
          [metrics] request) and the always-on flight recorder (served
          by [dump_trace]).  [false] keeps both as null sinks — the
          measured-overhead baseline. *)
  dump_dir : string option;
      (** where automatic flight-recorder dumps go (timestamped
          [owl-flight-<pid>-<reason>-<n>.json] files, written on
          [worker_lost] and on entry into degraded mode); [None]
          disables automatic dumps.  Requires [telemetry]. *)
}

val run :
  ?ready:(unit -> unit) ->
  config ->
  lookup:([ `Synth | `Verify ] -> string -> Synth.Engine.problem option) ->
  unit
(** Runs the daemon until a [Shutdown] request arrives, then drains:
    queued jobs finish, their replies are delivered, worker domains and
    reader threads are joined, and the listening socket is closed (and
    unlinked, for Unix paths) before [run] returns.

    [lookup] resolves a request's design name to a problem — the
    case-study registry in the CLI, a stub in tests.  For [`Verify] it
    must return the problem with the completed (hole-free) design to
    check — the reference implementation, in the CLI — or [None] when
    there is none.  [ready] is
    called once the socket is listening and workers are started, before
    the first accept: the hook an in-process harness uses to know it may
    connect.  Raises [Invalid_argument] on [jobs < 1] or
    [queue_depth < 0], and [Unix.Unix_error] if the address cannot be
    bound.  [SIGPIPE] is ignored process-wide (a vanished peer must
    surface as a write error, not a signal). *)
