(* The owl serve wire protocol.  See the interface for the grammar; the
   short version: every message is one length-prefixed JSON document, the
   length is a 4-byte big-endian unsigned integer, and every document
   carries the protocol version under "v".

   The codec builds on Owl_obs's [Json] emitter/strict parser — the same
   code that writes the bench report and Chrome traces — so escaping is
   byte-identical across every JSON the toolchain produces, and the parser
   is the strict one the test suite already trusts.

   Decoding is total: [request_of_frame]/[reply_of_frame] return [Error]
   rather than raising, because a daemon must survive any byte sequence a
   client can send.  Framing, by contrast, raises [Framing_error]: once
   the stream's length discipline is broken there is no resynchronizing,
   the connection is dead. *)

let version = 1
let max_frame = 16 * 1024 * 1024

exception Framing_error of string

(* {1 Addresses} *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let addr_of_string s =
  let strip prefix =
    if String.length s > String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then Some (String.sub s (String.length prefix)
                 (String.length s - String.length prefix))
    else None
  in
  match strip "unix:" with
  | Some p -> Ok (Unix_path p)
  | None -> (
      match strip "tcp:" with
      | Some rest -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "tcp address %S has no port" rest)
          | Some i -> (
              let host = String.sub rest 0 i in
              let port = String.sub rest (i + 1) (String.length rest - i - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
              | _ -> Error (Printf.sprintf "bad tcp port %S" port)))
      | None ->
          if s = "" then Error "empty address"
          else Ok (Unix_path s))

(* {1 Framing} *)

(* A signal landing mid-frame (SIGCHLD from a harness, a profiler's
   SIGPROF) surfaces as EINTR from read/write; EAGAIN/EWOULDBLOCK can
   leak out of sockets with unusual option inheritance.  Neither tears
   the stream's framing discipline, so neither may cost the connection:
   both retry the same syscall with the same offsets. *)
let rec write_all fd buf off len =
  if len > 0 then begin
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        write_all fd buf off len
  end

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then
    raise (Framing_error (Printf.sprintf "frame of %d bytes exceeds max %d" n max_frame));
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b 0 (4 + n)

(* Reads exactly [len] bytes, looping over short reads.  Returns how many
   bytes actually arrived before EOF — the caller decides whether a short
   count is a clean close (0 bytes at a frame boundary) or a torn frame. *)
let read_upto fd buf len =
  let rec go off =
    if off >= len then off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
      | exception Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          go off
  in
  go 0

let read_frame fd =
  let prefix = Bytes.create 4 in
  match read_upto fd prefix 4 with
  | 0 -> None
  | n when n < 4 ->
      raise (Framing_error (Printf.sprintf "EOF inside length prefix (%d/4 bytes)" n))
  | _ ->
      let len = Int32.to_int (Bytes.get_int32_be prefix 0) in
      if len < 0 || len > max_frame then
        raise
          (Framing_error
             (Printf.sprintf "length prefix %ld exceeds max frame %d"
                (Bytes.get_int32_be prefix 0) max_frame));
      let payload = Bytes.create len in
      let got = read_upto fd payload len in
      if got < len then
        raise
          (Framing_error
             (Printf.sprintf "EOF inside frame payload (%d/%d bytes)" got len));
      Some (Bytes.unsafe_to_string payload)

(* {1 Decode helpers} *)

type error = { code : string; message : string }

let fail code fmt = Printf.ksprintf (fun message -> Error { code; message }) fmt

(* the let* gives decoding straight-line shape; any missing/ill-typed
   field short-circuits into the error *)
let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_field name v =
  match Json.member name v with
  | Some (Json.String s) -> Ok s
  | _ -> fail "bad_request" "missing or non-string field %S" name

let int_field name v =
  match Json.member name v with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | _ -> fail "bad_request" "missing or non-integer field %S" name

let bool_field name v =
  match Json.member name v with
  | Some (Json.Bool b) -> Ok b
  | _ -> fail "bad_request" "missing or non-boolean field %S" name

let float_field name v =
  match Json.member name v with
  | Some (Json.Num f) -> Ok f
  | _ -> fail "bad_request" "missing or non-number field %S" name

(* {1 Engine options}

   The wire form of the PR 5 builder records.  Serialization walks the
   Schedule/Budget/Recovery sub-records; deserialization pipes
   [default_options] through the [with_*] setters, so the builders'
   validation is the wire validation — a request with [jobs = 0] or
   [escalation_factor = 0] is rejected exactly where a native caller
   would be.  The [cache] field never crosses the wire: which store (and
   which hot tier) backs a request is the server's decision. *)

let mode_to_string = function
  | Synth.Engine.Per_instruction -> "per_instruction"
  | Synth.Engine.Monolithic -> "monolithic"

let mode_of_string = function
  | "per_instruction" -> Ok Synth.Engine.Per_instruction
  | "monolithic" -> Ok Synth.Engine.Monolithic
  | s -> fail "bad_request" "unknown mode %S" s

let options_to_json (o : Synth.Engine.options) =
  Json.obj
    [
      ("mode", Json.str (mode_to_string o.Synth.Engine.schedule.Synth.Engine.Schedule.mode));
      ("jobs", Json.int o.Synth.Engine.schedule.Synth.Engine.Schedule.jobs);
      (* unlimited is max_int natively, which JSON's doubles cannot carry
         exactly — null is the wire spelling of "no budget" *)
      ( "conflict_budget",
        let b = o.Synth.Engine.budget.Synth.Engine.Budget.conflict_budget in
        if b = max_int then "null" else Json.int b );
      ("max_iterations", Json.int o.Synth.Engine.budget.Synth.Engine.Budget.max_iterations);
      ( "deadline_seconds",
        match o.Synth.Engine.budget.Synth.Engine.Budget.deadline_seconds with
        | None -> "null"
        | Some d -> Json.num d );
      ("retries", Json.int o.Synth.Engine.recovery.Synth.Engine.Recovery.retries);
      ( "escalation_factor",
        Json.int o.Synth.Engine.recovery.Synth.Engine.Recovery.escalation_factor );
      ( "validate_models",
        Json.bool o.Synth.Engine.recovery.Synth.Engine.Recovery.validate_models );
      ("check_independence", Json.bool o.Synth.Engine.check_independence);
      ("incremental", Json.bool o.Synth.Engine.incremental);
      (* nested so the whole SAT configuration is one optional unit: a
         peer that predates it omits the field and the server solves with
         its default profile (tolerant decode, protocol version unchanged).
         The pass gates are derived from the strategy so an old server
         still honors them even though it knows nothing of strategies *)
      ( "sat",
        let c = Solver.Strategy.sat_config o.Synth.Engine.strategy in
        Json.obj
          [
            ("lbd_retention", Json.bool c.Sat.lbd_retention);
            ("rephase", Json.bool c.Sat.rephase);
            ("subsume", Json.bool c.Sat.subsume);
            ("vivify", Json.bool c.Sat.vivify);
            ("elim", Json.bool c.Sat.elim);
            ( "inprocess_interval",
              let i = c.Sat.inprocess_interval in
              if i = max_int then "null" else Json.int i );
          ] );
      (* diversification half of the strategy, same optional-unit shape:
         an old server ignores it and solves with the gates above; an old
         client omits it and the server keeps its defaults *)
      ( "strategy",
        let s = o.Synth.Engine.strategy in
        Json.obj
          [
            ( "profile",
              Json.str (Sat.profile_name s.Solver.Strategy.profile) );
            ( "restart",
              Json.str (Solver.Strategy.restart_name s.Solver.Strategy.restart)
            );
            ("seed", Json.int s.Solver.Strategy.seed);
            ("phase", Json.str (Solver.Strategy.phase_name s.Solver.Strategy.phase));
            ("share_in", Json.bool s.Solver.Strategy.share_in);
            ("share_out", Json.bool s.Solver.Strategy.share_out);
          ] );
      (* racing/cubing request; absent reads as sequential *)
      ( "portfolio",
        let r = o.Synth.Engine.race in
        Json.obj
          [
            ("racers", Json.int r.Synth.Portfolio.racers);
            ("cube_vars", Json.int r.Synth.Portfolio.cube_vars);
            ("share_interval", Json.int r.Synth.Portfolio.share_interval);
            ("share_max_lbd", Json.int r.Synth.Portfolio.share_max_lbd);
          ] );
    ]

let options_of_json v =
  let* mode_s = str_field "mode" v in
  let* mode = mode_of_string mode_s in
  let* jobs = int_field "jobs" v in
  let* conflict_budget =
    match Json.member "conflict_budget" v with
    | Some Json.Null | None -> Ok max_int
    | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
    | Some _ -> fail "bad_request" "non-integer field \"conflict_budget\""
  in
  let* max_iterations = int_field "max_iterations" v in
  let* deadline =
    match Json.member "deadline_seconds" v with
    | Some Json.Null | None -> Ok None
    | Some (Json.Num f) -> Ok (Some f)
    | Some _ -> fail "bad_request" "non-number field \"deadline_seconds\""
  in
  let* retries = int_field "retries" v in
  let* escalation_factor = int_field "escalation_factor" v in
  let* validate_models = bool_field "validate_models" v in
  let* check_independence = bool_field "check_independence" v in
  let* incremental = bool_field "incremental" v in
  let* sat =
    match Json.member "sat" v with
    | None | Some Json.Null ->
        (* older peer: field absent, solve with the default profile *)
        Ok (Synth.Engine.sat_config Synth.Engine.default_options)
    | Some sv ->
        let* lbd_retention = bool_field "lbd_retention" sv in
        let* rephase = bool_field "rephase" sv in
        let* subsume = bool_field "subsume" sv in
        let* vivify = bool_field "vivify" sv in
        let* elim = bool_field "elim" sv in
        let* inprocess_interval =
          match Json.member "inprocess_interval" sv with
          | Some Json.Null | None -> Ok max_int
          | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
          | Some _ ->
              fail "bad_request" "non-integer field \"inprocess_interval\""
        in
        Ok
          {
            Sat.default_config with
            Sat.lbd_retention;
            rephase;
            subsume;
            vivify;
            elim;
            inprocess_interval;
          }
  in
  (* the diversification half rides in its own optional object; decoded
     to raw pieces here and applied through the Strategy builders below
     so their validation is the wire validation *)
  let* strategy_fields =
    match Json.member "strategy" v with
    | None | Some Json.Null -> Ok None
    | Some sv ->
        let* profile_s = str_field "profile" sv in
        let* profile =
          match Sat.profile_of_string profile_s with
          | Some p -> Ok p
          | None -> fail "bad_request" "unknown profile %S" profile_s
        in
        let* restart_s = str_field "restart" sv in
        let* restart =
          match Solver.Strategy.restart_of_string restart_s with
          | Some r -> Ok r
          | None -> fail "bad_request" "bad restart schedule %S" restart_s
        in
        let* seed = int_field "seed" sv in
        let* phase_s = str_field "phase" sv in
        let* phase =
          match Solver.Strategy.phase_of_string phase_s with
          | Some p -> Ok p
          | None -> fail "bad_request" "unknown phase policy %S" phase_s
        in
        let* share_in = bool_field "share_in" sv in
        let* share_out = bool_field "share_out" sv in
        Ok (Some (profile, restart, seed, phase, share_in, share_out))
  in
  let* race_fields =
    match Json.member "portfolio" v with
    | None | Some Json.Null -> Ok None
    | Some pv ->
        let* racers = int_field "racers" pv in
        let* cube_vars = int_field "cube_vars" pv in
        let* share_interval = int_field "share_interval" pv in
        let* share_max_lbd = int_field "share_max_lbd" pv in
        Ok (Some (racers, cube_vars, share_interval, share_max_lbd))
  in
  match
    Synth.Engine.(
      default_options |> with_mode mode |> with_jobs jobs
      |> with_conflict_budget conflict_budget
      |> with_max_iterations max_iterations
      |> with_deadline deadline |> with_retries retries
      |> with_escalation_factor escalation_factor
      |> with_validate_models validate_models
      |> with_check_independence check_independence
      |> with_incremental incremental |> with_sat_config sat
      |> (fun o ->
           match strategy_fields with
           | None -> o
           | Some (profile, restart, seed, phase, share_in, share_out) ->
               (* the pass gates decoded from "sat" are authoritative;
                  the profile field is the display tag that rode along *)
               let s = Solver.Strategy.of_config sat in
               let s = { s with Solver.Strategy.profile } in
               let s =
                 Solver.Strategy.(
                   s |> with_restart restart |> with_seed seed
                   |> with_phase phase |> with_share_in share_in
                   |> with_share_out share_out)
               in
               with_strategy s o)
      |> fun o ->
      match race_fields with
      | None -> o
      | Some (racers, cube_vars, share_interval, share_max_lbd) ->
          let r =
            Synth.Portfolio.(
              default |> with_racers racers |> with_cube_vars cube_vars
              |> with_share_interval share_interval
              |> with_share_max_lbd share_max_lbd)
          in
          with_race r o)
  with
  | o -> Ok o
  | exception Invalid_argument m -> fail "bad_request" "invalid options: %s" m

(* {1 Requests} *)

type request =
  | Synth of { design : string; options : Synth.Engine.options }
  | Verify of { design : string; options : Synth.Engine.options }
  | Cache_stats
  | Ping
  | Metrics
  | Dump_trace of { trace : string option }
  | Shutdown

(* the envelope's optional "trace" member is the request-scoped trace id:
   a client may supply one (distributed tracing), otherwise the server
   mints one at admission.  Absent reads as None — tolerant decode, the
   protocol version is unchanged *)
let envelope ?trace kind fields =
  let fields =
    match trace with
    | None -> fields
    | Some id -> ("trace", Json.str id) :: fields
  in
  Json.obj ((("v", Json.int version) :: ("t", Json.str kind) :: fields))

let trace_of_frame payload =
  match Json.parse payload with
  | exception Json.Parse_error _ -> None
  | v -> (
      match Json.member "trace" v with
      | Some (Json.String s) when s <> "" -> Some s
      | _ -> None)

let request_to_frame ?trace = function
  | Synth { design; options } ->
      envelope ?trace "synth"
        [ ("design", Json.str design); ("options", options_to_json options) ]
  | Verify { design; options } ->
      envelope ?trace "verify"
        [ ("design", Json.str design); ("options", options_to_json options) ]
  | Cache_stats -> envelope ?trace "cache_stats" []
  | Ping -> envelope ?trace "ping" []
  | Metrics -> envelope ?trace "metrics" []
  | Dump_trace { trace = filter } ->
      envelope ?trace "dump_trace"
        (match filter with
        | None -> []
        | Some id -> [ ("filter", Json.str id) ])
  | Shutdown -> envelope ?trace "shutdown" []

(* version check shared by both decode directions: absent or mismatched
   "v" is version skew, a distinct error code so the peer can say
   "upgrade" rather than "you sent garbage" *)
let check_envelope payload =
  match Json.parse payload with
  | exception Json.Parse_error m -> fail "bad_request" "frame is not JSON: %s" m
  | v -> (
      match Json.member "v" v with
      | Some (Json.Num f) when Float.is_integer f ->
          let got = int_of_float f in
          if got <> version then
            fail "version_skew" "peer speaks protocol %d, this end speaks %d"
              got version
          else
            let* t = str_field "t" v in
            Ok (t, v)
      | _ -> fail "version_skew" "frame carries no protocol version")

let request_of_frame payload =
  let* t, v = check_envelope payload in
  match t with
  | "synth" | "verify" ->
      let* design = str_field "design" v in
      let* options =
        match Json.member "options" v with
        | Some o -> options_of_json o
        | None -> fail "bad_request" "missing field \"options\""
      in
      Ok
        (if t = "synth" then Synth { design; options }
         else Verify { design; options })
  | "cache_stats" -> Ok Cache_stats
  | "ping" -> Ok Ping
  | "metrics" -> Ok Metrics
  | "dump_trace" ->
      let filter =
        match Json.member "filter" v with
        | Some (Json.String s) when s <> "" -> Some s
        | _ -> None
      in
      Ok (Dump_trace { trace = filter })
  | "shutdown" -> Ok Shutdown
  | t -> fail "bad_request" "unknown request kind %S" t

(* {1 Statistics} *)

let stats_to_json (st : Synth.Engine.stats) =
  Json.obj
    [
      ("iterations", Json.int st.Synth.Engine.iterations);
      ("queries", Json.int st.Synth.Engine.queries);
      ("conflicts", Json.int st.Synth.Engine.conflicts);
      ("blasted_vars", Json.int st.Synth.Engine.blasted_vars);
      ("blasted_clauses", Json.int st.Synth.Engine.blasted_clauses);
      ("trivial_unsats", Json.int st.Synth.Engine.trivial_unsats);
      ("retried_queries", Json.int st.Synth.Engine.retried_queries);
      ("degraded_queries", Json.int st.Synth.Engine.degraded_queries);
      ("validation_failures", Json.int st.Synth.Engine.validation_failures);
      ("task_retries", Json.int st.Synth.Engine.task_retries);
      ("sat_restarts", Json.int st.Synth.Engine.sat_restarts);
      ("sat_learnt_kept", Json.int st.Synth.Engine.sat_learnt_kept);
      ("sat_learnt_deleted", Json.int st.Synth.Engine.sat_learnt_deleted);
      ("sat_subsumed", Json.int st.Synth.Engine.sat_subsumed);
      ("sat_strengthened", Json.int st.Synth.Engine.sat_strengthened);
      ("sat_vivified", Json.int st.Synth.Engine.sat_vivified);
      ("sat_eliminated", Json.int st.Synth.Engine.sat_eliminated);
      ("sat_rephases", Json.int st.Synth.Engine.sat_rephases);
      ("races", Json.int st.Synth.Engine.races);
      ("race_unsat", Json.int st.Synth.Engine.race_unsat);
      ("race_shared_out", Json.int st.Synth.Engine.race_shared_out);
      ("race_shared_in", Json.int st.Synth.Engine.race_shared_in);
      ("cubes", Json.int st.Synth.Engine.cubes);
      ("cubes_unsat", Json.int st.Synth.Engine.cubes_unsat);
      ("wall_seconds", Json.num st.Synth.Engine.wall_seconds);
    ]

let stats_of_json v =
  let* iterations = int_field "iterations" v in
  let* queries = int_field "queries" v in
  let* conflicts = int_field "conflicts" v in
  let* blasted_vars = int_field "blasted_vars" v in
  let* blasted_clauses = int_field "blasted_clauses" v in
  let* trivial_unsats = int_field "trivial_unsats" v in
  let* retried_queries = int_field "retried_queries" v in
  let* degraded_queries = int_field "degraded_queries" v in
  let* validation_failures = int_field "validation_failures" v in
  let* task_retries = int_field "task_retries" v in
  (* SAT-core counters postdate the first protocol 1 deployments; an older
     peer's stats simply lack them, which reads as zero *)
  let opt_int name =
    match Json.member name v with
    | Some (Json.Num f) when Float.is_integer f -> int_of_float f
    | _ -> 0
  in
  let sat_restarts = opt_int "sat_restarts" in
  let sat_learnt_kept = opt_int "sat_learnt_kept" in
  let sat_learnt_deleted = opt_int "sat_learnt_deleted" in
  let sat_subsumed = opt_int "sat_subsumed" in
  let sat_strengthened = opt_int "sat_strengthened" in
  let sat_vivified = opt_int "sat_vivified" in
  let sat_eliminated = opt_int "sat_eliminated" in
  let sat_rephases = opt_int "sat_rephases" in
  (* portfolio counters postdate the SAT-core ones; same tolerance *)
  let races = opt_int "races" in
  let race_unsat = opt_int "race_unsat" in
  let race_shared_out = opt_int "race_shared_out" in
  let race_shared_in = opt_int "race_shared_in" in
  let cubes = opt_int "cubes" in
  let cubes_unsat = opt_int "cubes_unsat" in
  let* wall_seconds = float_field "wall_seconds" v in
  Ok
    {
      Synth.Engine.iterations;
      queries;
      conflicts;
      blasted_vars;
      blasted_clauses;
      trivial_unsats;
      retried_queries;
      degraded_queries;
      validation_failures;
      task_retries;
      sat_restarts;
      sat_learnt_kept;
      sat_learnt_deleted;
      sat_subsumed;
      sat_strengthened;
      sat_vivified;
      sat_eliminated;
      sat_rephases;
      races;
      race_unsat;
      race_shared_out;
      race_shared_in;
      cubes;
      cubes_unsat;
      wall_seconds;
    }

(* {1 Replies} *)

type progress =
  | Instr_started of { instr : string }
  | Instr_done of {
      instr : string;
      status : string;
      iterations : int;
      queries : int;
    }
  | Retry of { attempt : int; reason : string }
  | Degraded of { attempt : int }

type synth_result = {
  outcome : string;
  detail : string;
  bindings : (string * string) list;
  stats : Synth.Engine.stats;
  hot : bool;
  trace : string;  (* the server-minted (or client-supplied) trace id *)
}

type verify_result = {
  verdicts : (string * string) list;
  v_hot : bool;
  v_trace : string;
}

type hot_stats = {
  hot_hits : int;
  hot_misses : int;
  hot_evictions : int;
  hot_size : int;
  hot_capacity : int;
}

type cache_stats = {
  disk : Owl_cache.disk_stats option;
  store : Owl_cache.counters option;
  hot_tier : hot_stats option;
  served : int;
  rejected : int;
  uptime_seconds : float;
}

(* The [ping] health report, grown for load balancers and chaos asserts.
   Every field postdates the first protocol-1 deployments, so the decode
   is tolerant: an old server's bare pong reads as an all-zero report
   (workers unknown, nothing shed), and the protocol version is
   unchanged. *)
type health = {
  workers : int;  (* configured worker domains *)
  workers_alive : int;
  workers_lost : int;  (* cumulative worker-domain deaths *)
  queue_waiting : int;  (* jobs admitted but not yet running *)
  degraded : bool;  (* shedding solver work right now *)
  cancelled : int;  (* jobs cancelled by client disconnect *)
  shed : int;  (* solver requests answered Busy while degraded *)
  timeouts : int;  (* requests answered timeout before reaching a solver *)
  degraded_seconds : float;  (* cumulative time spent degraded *)
  uptime_s : float;  (* seconds since the daemon started listening *)
  build : string;  (* server build identifier *)
  hot_size : int;  (* hot-tier entries resident right now *)
  hot_capacity : int;  (* hot-tier capacity (0 = no hot tier) *)
}

let empty_health =
  {
    workers = 0;
    workers_alive = 0;
    workers_lost = 0;
    queue_waiting = 0;
    degraded = false;
    cancelled = 0;
    shed = 0;
    timeouts = 0;
    degraded_seconds = 0.0;
    uptime_s = 0.0;
    build = "";
    hot_size = 0;
    hot_capacity = 0;
  }

(* One metric as it crosses the wire: the flattened shape of
   [Owl_obs.metric], kind as a string so new kinds never break old
   decoders. *)
type wire_metric = {
  m_name : string;
  m_kind : string;  (* "counter" | "gauge" | "histogram" | "window" *)
  m_count : int;
  m_sum : int;
  m_min : int;
  m_max : int;
  m_p50 : int;
  m_p90 : int;
  m_p99 : int;
}

let wire_metric_of_obs (m : Obs.metric) =
  {
    m_name = m.Obs.metric_name;
    m_kind =
      (match m.Obs.metric_kind with
      | `Counter -> "counter"
      | `Gauge -> "gauge"
      | `Histogram -> "histogram"
      | `Window -> "window");
    m_count = m.Obs.count;
    m_sum = m.Obs.sum;
    m_min = m.Obs.min_value;
    m_max = m.Obs.max_value;
    m_p50 = m.Obs.p50;
    m_p90 = m.Obs.p90;
    m_p99 = m.Obs.p99;
  }

type reply =
  | Progress of progress
  | Synth_result of synth_result
  | Verify_result of verify_result
  | Cache_stats_reply of cache_stats
  | Pong of { server : string; protocol : int; health : health }
  | Metrics_reply of wire_metric list
  | Dump_trace_reply of { trace_json : string }
  | Busy of { queue_depth : int }
  | Err of error
  | Shutdown_ack

let progress_fields = function
  | Instr_started { instr } ->
      [ ("event", Json.str "instr_started"); ("instr", Json.str instr) ]
  | Instr_done { instr; status; iterations; queries } ->
      [
        ("event", Json.str "instr_done");
        ("instr", Json.str instr);
        ("status", Json.str status);
        ("iterations", Json.int iterations);
        ("queries", Json.int queries);
      ]
  | Retry { attempt; reason } ->
      [
        ("event", Json.str "retry");
        ("attempt", Json.int attempt);
        ("reason", Json.str reason);
      ]
  | Degraded { attempt } ->
      [ ("event", Json.str "degraded"); ("attempt", Json.int attempt) ]

let progress_of_json v =
  let* event = str_field "event" v in
  match event with
  | "instr_started" ->
      let* instr = str_field "instr" v in
      Ok (Instr_started { instr })
  | "instr_done" ->
      let* instr = str_field "instr" v in
      let* status = str_field "status" v in
      let* iterations = int_field "iterations" v in
      let* queries = int_field "queries" v in
      Ok (Instr_done { instr; status; iterations; queries })
  | "retry" ->
      let* attempt = int_field "attempt" v in
      let* reason = str_field "reason" v in
      Ok (Retry { attempt; reason })
  | "degraded" ->
      let* attempt = int_field "attempt" v in
      Ok (Degraded { attempt })
  | e -> fail "bad_request" "unknown progress event %S" e

let pairs_json key_name value_name l =
  Json.arr
    (List.map
       (fun (k, v) -> Json.obj [ (key_name, Json.str k); (value_name, Json.str v) ])
       l)

let pairs_of_json key_name value_name field v =
  match Json.member field v with
  | Some (Json.Arr items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* k = str_field key_name item in
          let* value = str_field value_name item in
          Ok ((k, value) :: acc))
        (Ok []) items
      |> Result.map List.rev
  | _ -> fail "bad_request" "missing or non-array field %S" field

let cache_stats_to_json (c : cache_stats) =
  let opt f = function None -> "null" | Some x -> f x in
  Json.obj
    [
      ( "disk",
        opt
          (fun (d : Owl_cache.disk_stats) ->
            Json.obj
              [
                ("result_entries", Json.int d.Owl_cache.result_entries);
                ("warm_entries", Json.int d.Owl_cache.warm_entries);
                ("total_bytes", Json.int d.Owl_cache.total_bytes);
              ])
          c.disk );
      ( "store",
        opt
          (fun (k : Owl_cache.counters) ->
            Json.obj
              [
                ("hits", Json.int k.Owl_cache.hits);
                ("misses", Json.int k.Owl_cache.misses);
                ("stale", Json.int k.Owl_cache.stale);
                ("writes", Json.int k.Owl_cache.writes);
              ])
          c.store );
      ( "hot_tier",
        opt
          (fun h ->
            Json.obj
              [
                ("hits", Json.int h.hot_hits);
                ("misses", Json.int h.hot_misses);
                ("evictions", Json.int h.hot_evictions);
                ("size", Json.int h.hot_size);
                ("capacity", Json.int h.hot_capacity);
              ])
          c.hot_tier );
      ("served", Json.int c.served);
      ("rejected", Json.int c.rejected);
      ("uptime_seconds", Json.num c.uptime_seconds);
    ]

let cache_stats_of_json v =
  let sub name parse =
    match Json.member name v with
    | Some Json.Null | None -> Ok None
    | Some o -> Result.map Option.some (parse o)
  in
  let* disk =
    sub "disk" (fun o ->
        let* result_entries = int_field "result_entries" o in
        let* warm_entries = int_field "warm_entries" o in
        let* total_bytes = int_field "total_bytes" o in
        Ok { Owl_cache.result_entries; warm_entries; total_bytes })
  in
  let* store =
    sub "store" (fun o ->
        let* hits = int_field "hits" o in
        let* misses = int_field "misses" o in
        let* stale = int_field "stale" o in
        let* writes = int_field "writes" o in
        Ok { Owl_cache.hits; misses; stale; writes })
  in
  let* hot_tier =
    sub "hot_tier" (fun o ->
        let* hot_hits = int_field "hits" o in
        let* hot_misses = int_field "misses" o in
        let* hot_evictions = int_field "evictions" o in
        let* hot_size = int_field "size" o in
        let* hot_capacity = int_field "capacity" o in
        Ok { hot_hits; hot_misses; hot_evictions; hot_size; hot_capacity })
  in
  let* served = int_field "served" v in
  let* rejected = int_field "rejected" v in
  let* uptime_seconds = float_field "uptime_seconds" v in
  Ok { disk; store; hot_tier; served; rejected; uptime_seconds }

let wire_metric_json m =
  Json.obj
    [
      ("name", Json.str m.m_name);
      ("kind", Json.str m.m_kind);
      ("count", Json.int m.m_count);
      ("sum", Json.int m.m_sum);
      ("min", Json.int m.m_min);
      ("max", Json.int m.m_max);
      ("p50", Json.int m.m_p50);
      ("p90", Json.int m.m_p90);
      ("p99", Json.int m.m_p99);
    ]

let wire_metric_of_json o =
  let* m_name = str_field "name" o in
  let* m_kind = str_field "kind" o in
  let opt_int name =
    match Json.member name o with
    | Some (Json.Num f) when Float.is_integer f -> int_of_float f
    | _ -> 0
  in
  Ok
    {
      m_name;
      m_kind;
      m_count = opt_int "count";
      m_sum = opt_int "sum";
      m_min = opt_int "min";
      m_max = opt_int "max";
      m_p50 = opt_int "p50";
      m_p90 = opt_int "p90";
      m_p99 = opt_int "p99";
    }

let reply_to_frame = function
  | Progress p -> envelope "progress" (progress_fields p)
  | Synth_result r ->
      envelope "synth_result"
        ?trace:(if r.trace = "" then None else Some r.trace)
        [
          ("outcome", Json.str r.outcome);
          ("detail", Json.str r.detail);
          ("bindings", pairs_json "hole" "expr" r.bindings);
          ("stats", stats_to_json r.stats);
          ("hot", Json.bool r.hot);
        ]
  | Verify_result r ->
      envelope "verify_result"
        ?trace:(if r.v_trace = "" then None else Some r.v_trace)
        [
          ("verdicts", pairs_json "instr" "verdict" r.verdicts);
          ("hot", Json.bool r.v_hot);
        ]
  | Cache_stats_reply c -> envelope "cache_stats" [ ("stats", cache_stats_to_json c) ]
  | Pong { server; protocol; health = h } ->
      envelope "pong"
        [
          ("server", Json.str server);
          ("protocol", Json.int protocol);
          ("workers", Json.int h.workers);
          ("workers_alive", Json.int h.workers_alive);
          ("workers_lost", Json.int h.workers_lost);
          ("queue_waiting", Json.int h.queue_waiting);
          ("degraded", Json.bool h.degraded);
          ("cancelled", Json.int h.cancelled);
          ("shed", Json.int h.shed);
          ("timeouts", Json.int h.timeouts);
          ("degraded_seconds", Json.num h.degraded_seconds);
          ("uptime_s", Json.num h.uptime_s);
          ("build", Json.str h.build);
          ("hot_size", Json.int h.hot_size);
          ("hot_capacity", Json.int h.hot_capacity);
        ]
  | Metrics_reply ms ->
      envelope "metrics" [ ("metrics", Json.arr (List.map wire_metric_json ms)) ]
  | Dump_trace_reply { trace_json } ->
      envelope "dump_trace" [ ("trace_json", Json.str trace_json) ]
  | Busy { queue_depth } -> envelope "busy" [ ("queue_depth", Json.int queue_depth) ]
  | Err { code; message } ->
      envelope "error" [ ("code", Json.str code); ("message", Json.str message) ]
  | Shutdown_ack -> envelope "shutdown_ack" []

let reply_of_frame payload =
  let* t, v = check_envelope payload in
  match t with
  | "progress" -> Result.map (fun p -> Progress p) (progress_of_json v)
  | "synth_result" ->
      let* outcome = str_field "outcome" v in
      let* detail = str_field "detail" v in
      let* bindings = pairs_of_json "hole" "expr" "bindings" v in
      let* stats =
        match Json.member "stats" v with
        | Some s -> stats_of_json s
        | None -> fail "bad_request" "missing field \"stats\""
      in
      let* hot = bool_field "hot" v in
      let trace = Option.value ~default:"" (trace_of_frame payload) in
      Ok (Synth_result { outcome; detail; bindings; stats; hot; trace })
  | "verify_result" ->
      let* verdicts = pairs_of_json "instr" "verdict" "verdicts" v in
      let* v_hot = bool_field "hot" v in
      let v_trace = Option.value ~default:"" (trace_of_frame payload) in
      Ok (Verify_result { verdicts; v_hot; v_trace })
  | "cache_stats" ->
      let* c =
        match Json.member "stats" v with
        | Some s -> cache_stats_of_json s
        | None -> fail "bad_request" "missing field \"stats\""
      in
      Ok (Cache_stats_reply c)
  | "pong" ->
      let* server = str_field "server" v in
      let* protocol = int_field "protocol" v in
      (* the health fields are newer than the first protocol-1 servers;
         absent reads as the empty report, like the sat stats above *)
      let opt_int name =
        match Json.member name v with
        | Some (Json.Num f) when Float.is_integer f -> int_of_float f
        | _ -> 0
      in
      let health =
        {
          workers = opt_int "workers";
          workers_alive = opt_int "workers_alive";
          workers_lost = opt_int "workers_lost";
          queue_waiting = opt_int "queue_waiting";
          degraded =
            (match Json.member "degraded" v with
            | Some (Json.Bool b) -> b
            | _ -> false);
          cancelled = opt_int "cancelled";
          shed = opt_int "shed";
          timeouts = opt_int "timeouts";
          degraded_seconds =
            (match Json.member "degraded_seconds" v with
            | Some (Json.Num f) -> f
            | _ -> 0.0);
          uptime_s =
            (match Json.member "uptime_s" v with
            | Some (Json.Num f) -> f
            | _ -> 0.0);
          build =
            (match Json.member "build" v with
            | Some (Json.String s) -> s
            | _ -> "");
          hot_size = opt_int "hot_size";
          hot_capacity = opt_int "hot_capacity";
        }
      in
      Ok (Pong { server; protocol; health })
  | "metrics" -> (
      match Json.member "metrics" v with
      | Some (Json.Arr items) ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* m = wire_metric_of_json item in
              Ok (m :: acc))
            (Ok []) items
          |> Result.map (fun ms -> Metrics_reply (List.rev ms))
      | _ -> fail "bad_request" "missing or non-array field \"metrics\"")
  | "dump_trace" ->
      let* trace_json = str_field "trace_json" v in
      Ok (Dump_trace_reply { trace_json })
  | "busy" ->
      let* queue_depth = int_field "queue_depth" v in
      Ok (Busy { queue_depth })
  | "error" ->
      let* code = str_field "code" v in
      let* message = str_field "message" v in
      Ok (Err { code; message })
  | "shutdown_ack" -> Ok Shutdown_ack
  | t -> fail "bad_request" "unknown reply kind %S" t

(* {1 Metric renderings}

   Textual forms of a metrics reply, here rather than in the CLI so the
   test suite can pin them down next to the codec.  The Prometheus form
   follows the exposition-format conventions: dots become underscores, an
   [owl_] namespace prefix, counters get a [_total] suffix, histograms
   and windows render as summaries (quantile-labelled samples plus
   [_sum]/[_count]). *)

let prometheus_name m =
  "owl_" ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) m.m_name

let metrics_to_prometheus ms =
  let b = Buffer.create 1024 in
  List.iter
    (fun m ->
      let n = prometheus_name m in
      match m.m_kind with
      | "counter" ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s_total counter\n" n);
          Buffer.add_string b (Printf.sprintf "%s_total %d\n" n m.m_count)
      | "gauge" ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n m.m_count)
      | _ ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
          List.iter
            (fun (q, v) ->
              Buffer.add_string b
                (Printf.sprintf "%s{quantile=%S} %d\n" n q v))
            [ ("0.5", m.m_p50); ("0.9", m.m_p90); ("0.99", m.m_p99) ];
          Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n m.m_sum);
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n m.m_count))
    ms;
  Buffer.contents b

let metrics_to_json ms = Json.arr (List.map wire_metric_json ms)
