(** Synchronous client for an [owl serve] daemon.

    One request in flight per handle: each call writes its request frame
    and blocks until the terminal reply, forwarding streamed
    {!Proto.progress} events to [on_progress] as they arrive.  Handles
    are not safe to share across threads without external locking (the
    reply stream would interleave); open one handle per thread instead —
    the server multiplexes connections fairly.

    Any call may raise {!Server_busy} (admission control declined — back
    off and retry), {!Server_error} (the server answered with an error,
    e.g. ["unknown_design"] or ["version_skew"]), {!Protocol_error} (the
    reply stream itself is broken), {!Proto.Framing_error}, or
    [Unix.Unix_error]. *)

type t

exception Server_busy of int
(** The queue already held this many waiting jobs. *)

exception Server_error of Proto.error
exception Protocol_error of string

val connect : Proto.addr -> t
(** Raises [Unix.Unix_error] if the daemon is not reachable. *)

val close : t -> unit

val ping : t -> string * int * Proto.health
(** Server name, protocol version, and the health report (worker
    capacity, queue depth, degraded flag — see {!Proto.health}).  An
    old server that predates the report answers with
    {!Proto.empty_health}. *)

val synth :
  ?on_progress:(Proto.progress -> unit) ->
  t ->
  design:string ->
  Synth.Engine.options ->
  Proto.synth_result

val verify :
  ?on_progress:(Proto.progress -> unit) ->
  t ->
  design:string ->
  Synth.Engine.options ->
  Proto.verify_result

val cache_stats : t -> Proto.cache_stats

val metrics : t -> Proto.wire_metric list
(** The server's live metric registry — counters, gauges (refreshed at
    the moment of the request: queue depth, in-flight jobs, worker
    liveness, hot-tier occupancy), lifetime histograms, and the sliding
    1-minute latency windows.  Empty when the daemon runs with
    telemetry disabled.  Render with {!Proto.metrics_to_prometheus} or
    {!Proto.metrics_to_json}. *)

val dump_trace : ?trace:string -> t -> string
(** The server's flight recorder — the bounded per-domain ring of
    recent spans and instants — serialized as Chrome trace-event JSON.
    [?trace] restricts the dump to the events of one request-scoped
    trace id (as returned in {!Proto.synth_result.trace}).  The JSON is
    empty-but-valid when telemetry is disabled. *)

val shutdown : t -> unit
(** Asks the daemon to drain and exit; returns once acknowledged. *)

val with_retry :
  ?retries:int ->
  ?backoff_ms:int ->
  ?seed:int ->
  ?on_retry:(attempt:int -> delay:float -> exn -> unit) ->
  Proto.addr ->
  (t -> 'a) ->
  'a
(** [with_retry addr f] connects, runs [f] on the handle, and closes it.
    If connecting or [f] fails with a retryable error — {!Server_busy},
    a ["worker_lost"] {!Server_error}, a broken connection
    ({!Protocol_error}, {!Proto.Framing_error}), or a transient
    [Unix.Unix_error] (refused, reset, pipe, missing socket) — it backs
    off and tries again on a {e fresh} connection, up to [retries]
    (default 0) more times; anything else, and the last failure, re-raise
    unchanged.  Safe for [synth]/[verify] because requests are idempotent
    by content fingerprint: a duplicate submission finds the first run's
    hot-tier entry, it cannot produce divergent bindings.

    The backoff for attempt [k] is [backoff_ms * 2^(k-1)] milliseconds
    (default base 100), jittered uniformly into its upper half so
    simultaneously-rejected clients spread out; [seed] makes one client's
    jitter reproducible.  Each retry bumps the [client.retries] Owl_obs
    counter and calls [on_retry] with the upcoming delay and the failure
    being retried. *)
