(** Synchronous client for an [owl serve] daemon.

    One request in flight per handle: each call writes its request frame
    and blocks until the terminal reply, forwarding streamed
    {!Proto.progress} events to [on_progress] as they arrive.  Handles
    are not safe to share across threads without external locking (the
    reply stream would interleave); open one handle per thread instead —
    the server multiplexes connections fairly.

    Any call may raise {!Server_busy} (admission control declined — back
    off and retry), {!Server_error} (the server answered with an error,
    e.g. ["unknown_design"] or ["version_skew"]), {!Protocol_error} (the
    reply stream itself is broken), {!Proto.Framing_error}, or
    [Unix.Unix_error]. *)

type t

exception Server_busy of int
(** The queue already held this many waiting jobs. *)

exception Server_error of Proto.error
exception Protocol_error of string

val connect : Proto.addr -> t
(** Raises [Unix.Unix_error] if the daemon is not reachable. *)

val close : t -> unit

val ping : t -> string * int
(** Server name and protocol version. *)

val synth :
  ?on_progress:(Proto.progress -> unit) ->
  t ->
  design:string ->
  Synth.Engine.options ->
  Proto.synth_result

val verify :
  ?on_progress:(Proto.progress -> unit) ->
  t ->
  design:string ->
  Synth.Engine.options ->
  Proto.verify_result

val cache_stats : t -> Proto.cache_stats

val shutdown : t -> unit
(** Asks the daemon to drain and exit; returns once acknowledged. *)
