(* Synchronous client for the owl serve protocol.

   One request in flight at a time: each call writes a frame, then reads
   replies — forwarding the non-terminal [Progress] stream to the
   caller's callback — until its terminal reply arrives.  Outcomes the
   caller must act on (backpressure, server-reported errors) are
   exceptions, so the happy-path return types stay plain results. *)

type t = { fd : Unix.file_descr }

exception Server_busy of int
exception Server_error of Proto.error
exception Protocol_error of string

let connect addr =
  match addr with
  | Proto.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      { fd }
  | Proto.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e -> Unix.close fd; raise e);
      { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* reads to the terminal reply; [on_progress] sees the stream.  A reply
   the protocol allows but this exchange does not expect (say, a
   [Pong] answering a [Synth]) is a server bug — surfaced as
   [Protocol_error], never silently dropped. *)
let exchange ?(on_progress = fun _ -> ()) t req =
  Proto.write_frame t.fd (Proto.request_to_frame req);
  let rec next () =
    match Proto.read_frame t.fd with
    | None -> raise (Protocol_error "server closed the connection mid-exchange")
    | Some payload -> (
        match Proto.reply_of_frame payload with
        | Error e ->
            raise
              (Protocol_error
                 (Printf.sprintf "undecodable reply (%s: %s)" e.Proto.code
                    e.Proto.message))
        | Ok (Proto.Progress p) ->
            on_progress p;
            next ()
        | Ok (Proto.Busy { queue_depth }) -> raise (Server_busy queue_depth)
        | Ok (Proto.Err e) -> raise (Server_error e)
        | Ok reply -> reply)
  in
  next ()

let unexpected what = raise (Protocol_error ("unexpected terminal reply to " ^ what))

let ping t =
  match exchange t Proto.Ping with
  | Proto.Pong { server; protocol; health } -> (server, protocol, health)
  | _ -> unexpected "ping"

let synth ?on_progress t ~design options =
  match exchange ?on_progress t (Proto.Synth { design; options }) with
  | Proto.Synth_result r -> r
  | _ -> unexpected "synth"

let verify ?on_progress t ~design options =
  match exchange ?on_progress t (Proto.Verify { design; options }) with
  | Proto.Verify_result r -> r
  | _ -> unexpected "verify"

let cache_stats t =
  match exchange t Proto.Cache_stats with
  | Proto.Cache_stats_reply c -> c
  | _ -> unexpected "cache_stats"

let metrics t =
  match exchange t Proto.Metrics with
  | Proto.Metrics_reply ms -> ms
  | _ -> unexpected "metrics"

let dump_trace ?trace t =
  match exchange t (Proto.Dump_trace { trace }) with
  | Proto.Dump_trace_reply { trace_json } -> trace_json
  | _ -> unexpected "dump_trace"

let shutdown t =
  match exchange t Proto.Shutdown with
  | Proto.Shutdown_ack -> ()
  | _ -> unexpected "shutdown"

(* {1 Retry} *)

let c_retries = Obs.counter "client.retries"

(* Worth another attempt: backpressure, a lost worker (the server says so
   explicitly), or the connection dying under us — daemon restarts and
   the [conn_drop] chaos fault land here.  Requests are idempotent by
   content fingerprint, so re-sending after an ambiguous failure risks
   recomputation, never a wrong answer. *)
let retryable = function
  | Server_busy _ -> true
  | Server_error { Proto.code = "worker_lost"; _ } -> true
  | Protocol_error _ -> true
  | Proto.Framing_error _ -> true
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOENT
        | Unix.EAGAIN | Unix.ETIMEDOUT ),
        _,
        _ ) ->
      true
  | _ -> false

(* exponential base doubling per attempt, jittered to half-to-full of the
   rung so a burst of rejected clients does not re-arrive in lockstep;
   seeded [Random.State] keeps any one client's schedule reproducible *)
let backoff_delay ~backoff_ms ~seed ~attempt =
  let st = Random.State.make [| seed; attempt; 0x6f776c |] in
  let rung = float_of_int backoff_ms *. (2.0 ** float_of_int (attempt - 1)) in
  rung /. 1000.0 *. (0.5 +. Random.State.float st 0.5)

let with_retry ?(retries = 0) ?(backoff_ms = 100) ?(seed = 0)
    ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) addr f =
  if retries < 0 then invalid_arg "Client.with_retry: retries < 0";
  if backoff_ms < 0 then invalid_arg "Client.with_retry: backoff_ms < 0";
  let rec go attempt =
    match
      let c = connect addr in
      Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
    with
    | v -> v
    | exception e when attempt <= retries && retryable e ->
        Obs.incr c_retries;
        let delay = backoff_delay ~backoff_ms ~seed ~attempt in
        on_retry ~attempt ~delay e;
        Unix.sleepf delay;
        go (attempt + 1)
  in
  go 1
