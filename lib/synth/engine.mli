(** Control logic synthesis (paper §3.3): filling datapath-sketch holes so
    that every specification instruction's precondition implies its
    postcondition, for all initial states — Equation (1), decided by CEGIS.

    Strategy selection:
    - independent per-instruction CEGIS when the mode is [Per_instruction]
      and no [Shared] holes exist (the paper's §3.3.1 optimization);
    - joint synthesis with per-instruction verification when [Shared] holes
      (FSM state encodings) must be consistent across instructions;
    - [Monolithic]: one verification query over the disjunction of all
      instructions' violation formulas — the unoptimized baseline whose
      solving time explodes (Table 1's dagger rows). *)

type mode = Per_instruction | Monolithic

(** {1 Configuration}

    Options are grouped by concern into sub-records and built by piping
    {!default_options} through [with_*] setters:

    {[
      let opts =
        Engine.default_options
        |> Engine.with_jobs 4
        |> Engine.with_deadline (Some 60.0)
        |> Engine.with_cache (Some (Owl_cache.open_dir ".owl-cache"))
    ]}

    The setters centralize validation, so any value they produce is
    well-formed. *)

(** How work is scheduled across strategies and worker domains. *)
module Schedule : sig
  type t = {
    mode : mode;
    jobs : int;
        (** worker domains for the independent per-instruction loops; [1]
            (the default) is the serial path.  Shared holes force joint
            synthesis, which ignores [jobs] and stays serial. *)
  }
end

(** How much work a call may spend before declaring [Timeout]. *)
module Budget : sig
  type t = {
    conflict_budget : int;
        (** total SAT conflicts before declaring timeout *)
    max_iterations : int;  (** CEGIS rounds per loop *)
    deadline_seconds : float option;  (** wall-clock timeout *)
  }
end

(** How solver hiccups are retried and models cross-checked; see
    {!Resilience}. *)
module Recovery : sig
  type t = {
    retries : int;
        (** extra attempts per solver query (and per crashed pool task)
            before giving up: an [Unknown] outcome climbs the {!Resilience}
            ladder — geometrically escalating conflict budgets and deadline
            slices, the final attempt degrading from the incremental
            session to a fresh one-shot solver — instead of immediately
            timing the run out.  With the default unlimited budget and no
            deadline the ladder only engages under injected or
            environmental faults, so it costs nothing otherwise. *)
    escalation_factor : int;
        (** geometric budget/time growth per retry attempt *)
    validate_models : bool;
        (** cross-check every [Sat] model by concretely evaluating the
            asserted terms before trusting it; a failed check retries and
            ultimately falls back to a fresh solver rather than emitting
            wrong bindings.  Off by default (pay-as-you-go). *)
  }
end

type options = {
  schedule : Schedule.t;
  budget : Budget.t;
  recovery : Recovery.t;
  check_independence : bool;
      (** verify the instruction-independence preconditions (paper §3.3.1)
          before synthesizing; the abstraction function's assume wires act
          as the permitted feedback cuts *)
  incremental : bool;
      (** keep one persistent {!Solver.Session} pair per CEGIS loop — SAT
          state, the Tseitin blasting cache, and learned clauses survive
          across iterations, stale candidates are retracted via activation
          literals — instead of re-encoding every query from scratch.  On
          by default; [false] restores the historical fresh-solver-per-query
          behavior (the [--no-incremental] escape hatch). *)
  cache : Owl_cache.t option;
      (** cross-run synthesis cache (see {!Owl_cache}): before each
          independent per-instruction CEGIS loop the engine consults the
          result tier (validated hits skip the loop entirely) and replays
          warm-start state on partial hits; solved and timed-out loops
          populate the store.  Joint and monolithic strategies do not
          cache.  [None] (the default) disables caching. *)
  strategy : Solver.Strategy.t;
      (** solver strategy (see {!Solver.Strategy}): the SAT pass gates
          plus the restart-schedule/seed/phase diversification base,
          applied to every solver the run creates.  Excluded from problem
          fingerprints — it changes how fast a model is found, never
          which models exist. *)
  race : Portfolio.options;
      (** portfolio racing / cube-and-conquer for the hard verification
          queries (see {!Portfolio}); {!Portfolio.default} = sequential.
          Racing accelerates only the Unsat direction, so bindings stay
          bit-identical to sequential runs. *)
}

val default_options : options
(** [Per_instruction], one job, unlimited conflicts, 256 rounds, no
    deadline, incremental sessions on, 2 retries with factor-4 escalation,
    model validation off, no cache, {!Solver.Strategy.default}, no
    racing. *)

(** {2 Setters}

    Each returns an updated copy; compose with [|>].  Validation:
    {!with_jobs} rejects [jobs < 1], {!with_max_iterations} rejects
    [max_iterations < 1], {!with_retries} and {!with_escalation_factor}
    delegate to {!Resilience.make} (rejecting [retries < 0] and
    [escalation_factor < 1]) — all with [Invalid_argument]. *)

val with_mode : mode -> options -> options
val with_jobs : int -> options -> options
val with_conflict_budget : int -> options -> options
val with_max_iterations : int -> options -> options

val with_deadline : float option -> options -> options
(** [None] removes a deadline. *)

val with_retries : int -> options -> options
val with_escalation_factor : int -> options -> options
val with_validate_models : bool -> options -> options
val with_check_independence : bool -> options -> options
val with_incremental : bool -> options -> options
val with_cache : Owl_cache.t option -> options -> options

val with_strategy : Solver.Strategy.t -> options -> options

val sat_config : options -> Sat.config
(** The SAT configuration the strategy resolves to —
    [Solver.Strategy.sat_config options.strategy]. *)

val with_race : Portfolio.options -> options -> options
val with_portfolio : int -> options -> options
(** [with_portfolio n] races [n] diversified strategies on each hard
    verify query; shorthand for editing [race].  Rejects [n < 1]
    (via {!Portfolio.with_racers}). *)

val with_cube_vars : int -> options -> options
(** [with_cube_vars k] splits each hard verify query into [2^k]
    assumption cubes; rejects values outside [0..12]. *)

val with_sat_config : Sat.config -> options -> options
(** Deprecated shim: adopts a raw {!Sat.config} as
    [with_strategy (Solver.Strategy.of_config c)].  Rejects
    [inprocess_interval < 1] with [Invalid_argument].  Prefer
    {!with_strategy}. *)

val with_sat_profile : Sat.profile -> options -> options
(** Deprecated shim for
    [with_strategy (Solver.Strategy.of_profile p)]; prefer
    {!with_strategy}. *)

type stats = {
  mutable iterations : int;
  mutable queries : int;
  mutable conflicts : int;
  mutable blasted_vars : int;
      (** SAT variables allocated, summed over every query *)
  mutable blasted_clauses : int;
      (** problem clauses encoded (blasting, Ackermann congruence, guards;
          learned clauses excluded), summed over every query.  Session
          queries report per-check increments, so this compares directly
          across incremental and fresh modes — it is the work the
          incremental sessions exist to avoid repeating. *)
  mutable trivial_unsats : int;
      (** queries refuted by constant folding before any SAT search *)
  mutable retried_queries : int;
      (** ladder retries: query attempts that came back [Unknown] (or
          failed model validation) and were re-run one rung up *)
  mutable degraded_queries : int;
      (** ladder final rungs executed on a fresh one-shot solver instead
          of the incremental session *)
  mutable validation_failures : int;
      (** [Sat] models rejected by concrete evaluation of the asserted
          terms (with [validate_models]) *)
  mutable task_retries : int;
      (** crashed pool tasks re-executed on a fresh worker arena *)
  mutable sat_restarts : int;  (** solver restarts, summed over queries *)
  mutable sat_learnt_kept : int;
      (** learned clauses surviving reduce-DB rounds (each round counts
          its post-reduction database size) *)
  mutable sat_learnt_deleted : int;
      (** learned clauses deleted by reduce-DB rounds *)
  mutable sat_subsumed : int;
      (** clauses deleted by inprocessing subsumption *)
  mutable sat_strengthened : int;
      (** clauses shrunk by self-subsuming resolution *)
  mutable sat_vivified : int;  (** literals removed by clause vivification *)
  mutable sat_eliminated : int;
      (** variables removed by bounded variable elimination *)
  mutable sat_rephases : int;  (** best-phase rephasing events *)
  mutable races : int;  (** portfolio races run (see {!Portfolio}) *)
  mutable race_unsat : int;  (** races settling a query Unsat *)
  mutable race_shared_out : int;
      (** glue clauses published between racers *)
  mutable race_shared_in : int;  (** glue clauses imported by racers *)
  mutable cubes : int;  (** cube-and-conquer cubes fanned out *)
  mutable cubes_unsat : int;  (** cubes refuted *)
  mutable wall_seconds : float;
}

type solved = {
  completed : Oyster.Ast.design;  (** holes filled, typechecked *)
  bindings : (string * Oyster.Ast.expr) list;  (** what filled each hole *)
  per_instr : (string * (string * Bitvec.t) list) list;
      (** instruction -> hole -> synthesized constant *)
  shared : (string * Bitvec.t) list;  (** Shared-hole constants *)
  pre_exprs : (string * Oyster.Ast.expr) list;
      (** each instruction's precondition over the datapath namespace *)
  stats : stats;
}

type outcome =
  | Solved of solved
  | Timeout of stats
  | Unrealizable of { instr : string option; stats : stats }
      (** no hole values satisfy the named instruction (or, in joint modes,
          the conjunction) *)
  | Union_failed of { diagnostic : string; stats : stats }
      (** synthesis succeeded but a precondition could not be re-expressed
          over the datapath wires *)
  | Not_independent of {
      overlapping : (string * string) list;
      feedback : (string * string * string) list;
      stats : stats;
    }  (** the §3.3.1 preconditions fail (with [check_independence]) *)

exception Engine_error of string

exception Cancelled
(** Raised out of {!synthesize} or {!verify} when the caller's [cancel]
    token reports true.  Cancellation is cooperative: the token is polled
    wherever the deadline is checked (every CEGIS iteration and every
    resilience-ladder attempt), so a long single solver query still runs
    to its own budget slice before the poll is reached.  No partial
    outcome is returned — the caller asked for the work to stop, so there
    is nothing worth reporting. *)

type problem = {
  design : Oyster.Ast.design;
  spec : Ila.Spec.t;
  af : Ila.Absfun.t;
}

val problem_prefix : problem -> string
(** The deterministic symbolic-evaluation namespace the engine passes to
    {!Oyster.Symbolic.eval} for this problem (derived from the design
    name, not from a session counter).  Reusing it — as {!Minimize} does —
    keeps hole-variable names consistent with the synthesis trace and
    keeps repeated runs bit-for-bit reproducible. *)

val ground_reads : Solver.model -> Term.t -> Term.t
(** Replaces residual (hole-address-dependent) memory reads of a
    counterexample-substituted formula by the counterexample's memory
    function; exposed for the {!Minimize} pass and tests. *)

val synthesize :
  ?options:options ->
  ?cancel:(unit -> bool) ->
  ?race_tally:Portfolio.tally ->
  problem ->
  outcome
(** Runs CEGIS according to [options].  [cancel] (default
    [fun () -> false]) is a cooperative cancellation token — a daemon
    passes a closure over an [Atomic.t] it flips when the requesting
    client disconnects; the engine polls it alongside the deadline and
    raises {!Cancelled}.  It is a parameter rather than an [options]
    field so [options] stays a first-class, comparable, serializable
    value.  With [options.jobs > 1] and no
    [Shared] holes, the independent per-instruction loops are fanned out
    over a {!Pool} of worker domains; results are merged deterministically
    (same [bindings]/[per_instr] as the serial schedule, stats summed
    across workers, the lowest-indexed failing instruction blamed on
    failure).  When [Shared] holes force joint synthesis, or [jobs = 1],
    the serial path runs unchanged.  The [conflict_budget] is global to
    the call; under parallel schedules the exact query at which an
    exhausted budget is noticed may vary, but unlimited-budget runs are
    bit-for-bit deterministic.

    With [options.incremental] (the default) each CEGIS loop keeps one
    verify session and one synth session for its lifetime: counterexample
    constraints are asserted once and accumulate, candidate violations are
    asserted behind activation literals and retracted when refuted, and
    the Tseitin cache re-encodes only each iteration's new cones.  The
    sessions are per loop (never shared between instructions), so
    incremental bindings are identical for any [jobs] value; they may
    differ from fresh-mode bindings (both satisfy the specification — the
    solver's search visits models in a different order when state
    persists). *)

(** {1 Verification of completed designs}

    With no holes this is plain bounded refinement checking — the way a
    hand-written control implementation is formally checked against the
    specification, instruction by instruction.

    Each query is preprocessed by {e field refinement}: instruction-word
    fields that the precondition pins to constants (opcode, funct3,
    funct7) are substituted structurally into the fetched word, so the
    decode comparisons fold and the datapath's operation-selection muxes
    collapse before bit-blasting.  Without this, verifying a core whose
    ALU tree contains wide multipliers or dividers is intractable: the
    solver has to refute every unselected cone bit by bit. *)

type verdict = Verified | Violated of Solver.model | Inconclusive

val verify :
  ?budget:int ->
  ?deadline:float ->
  ?jobs:int ->
  ?incremental:bool ->
  ?retries:int ->
  ?escalation_factor:int ->
  ?validate_models:bool ->
  ?sat:Sat.config ->
  ?strategy:Solver.Strategy.t ->
  ?race:Portfolio.options ->
  ?race_tally:Portfolio.tally ->
  ?cancel:(unit -> bool) ->
  problem ->
  (string * verdict) list
(** Raises {!Engine_error} if the design still has holes, and
    {!Cancelled} if [cancel] (polled at every resilience-ladder attempt)
    reports true.  [strategy] (default {!Solver.Strategy.default})
    selects the solver strategy for every solver the verification
    creates; [sat] is the deprecated raw-config spelling of the same
    thing and loses to [strategy] when both are given.  [race] (default
    off) runs each instruction's refinement check through {!Portfolio}
    first — an Unsat race verdict is [Verified] directly; Sat/Unknown
    falls through to the sequential ladder below.  When racing, the
    worker pool serves each query's racers or cubes and the instructions
    run serially; [race_tally] (see {!Portfolio.read_tally}) accumulates
    per-racer wins and sharing volumes across the call.  [jobs]
    (default 1) fans the per-instruction refinement checks out across
    worker domains; the verdict list keeps instruction order either way.
    With [incremental] (the default) each worker reuses one solver session
    across the instructions it checks, so the shared datapath trace is
    blasted once per worker instead of once per instruction.  Which
    instructions share a session depends on the dynamic schedule; with an
    unexhausted budget this never changes a verdict (counterexample models
    are re-derived by a fresh check, so they are schedule-independent
    too), but under a tight [budget] the exact query that exhausts it may
    differ from the fresh mode's.

    [retries], [escalation_factor], and [validate_models] (defaults as in
    {!default_options}) run each instruction's query through the same
    {!Resilience} ladder as synthesis: [budget] bounds the whole ladder,
    deadline slices divide the remaining wall time over the instructions
    still outstanding, the final attempt runs on a fresh one-shot solver,
    and only an exhausted ladder is reported [Inconclusive].  Crashed
    worker tasks are retried up to [retries] times on a fresh arena. *)

val monolithic_violation : ?refine:bool -> problem -> Term.t
(** The monolithic ∀-verify query in closed form: the disjunction over
    all instructions of "precondition and assumptions hold but the
    postcondition fails" on the completed design's trace — Unsat iff the
    design is correct.  This is the per-iteration verification query of
    the monolithic schedule mode, exported so benches and tools can
    attack the hard query directly (e.g. {!Portfolio.check}) without
    driving the CEGIS loop.  [refine] (default [true]) folds each
    disjunct's pinned instruction-word fields first, as {!verify} does;
    [refine:false] keeps the whole decode tree — the intractable form.
    Raises {!Engine_error} if the design still has holes. *)
