(* A fixed-size Domain worker pool for independent synthesis jobs.

   Tasks are pulled from a shared atomic cursor, so the pool balances load
   without any per-task channel machinery.  The calling domain is itself a
   worker (spawning [jobs - 1] extra domains), which makes [jobs = 1] a
   true serial fallback: no domain is spawned and tasks run inline, in
   order, on the caller's stack.

   Results are stored by task index and returned in input order, so callers
   see a deterministic shape regardless of completion order.  A task that
   raises is first retried up to [retries] times, each retry on fresh
   per-worker state (a crashed worker's arena may be mid-mutation, so it is
   abandoned rather than reused); only a task whose every attempt raised
   becomes [Raised].  That does not tear the pool down mid-run either:
   every task still executes, and the exception of the lowest-indexed
   failing task is re-raised after all workers have joined (deterministic
   blame). *)

type 'b cell = Pending | Done of 'b | Raised of exn

let c_tasks = Obs.counter "pool.tasks"
let c_task_crashes = Obs.counter "pool.task_crashes"
let h_task_latency = Obs.histogram "pool.task.latency_us"

(* [map_arena] is the general form: each worker calls [make] at startup
   (and once more per retry attempt), and passes the resulting per-worker
   state to every task it executes.  This is how the engine gives each
   domain its own {!Solver.Arena} — sessions are unlocked single-owner
   state, so they must be allocated on (and never leave) the domain that
   uses them. *)
let map_arena ~jobs ~make ?(retries = 0) ?retried f items =
  if jobs < 1 then invalid_arg "Pool.map_arena: jobs < 1";
  if retries < 0 then invalid_arg "Pool.map_arena: retries < 0";
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let run_task w i =
      (* [Fault.on_task] is the crash-injection point: it counts this
         attempt and raises when the installed fault plan says so, taking
         exactly the retry path a real worker crash would *)
      let rec attempt w k =
        match
          Obs.span "pool.task"
            ~args:[ ("task", Obs.Int i); ("attempt", Obs.Int k) ]
            (fun () ->
              Fault.on_task ();
              f w arr.(i))
        with
        | v -> Done v
        | exception e ->
            let will_retry = k < retries in
            Obs.incr c_task_crashes;
            if Obs.recording () then
              Obs.instant "pool.task.crash"
                ~args:
                  [
                    ("task", Obs.Int i);
                    ("attempt", Obs.Int k);
                    ("exn", Obs.Str (Printexc.to_string e));
                    ("will_retry", Obs.Bool will_retry);
                  ];
            if not will_retry then Raised e
            else begin
              (match retried with
              | Some c -> Atomic.incr c
              | None -> ());
              attempt (make ()) (k + 1)
            end
      in
      let t_start =
        if Obs.metrics_enabled () then Unix.gettimeofday () else 0.0
      in
      let r = attempt w 0 in
      Obs.incr c_tasks;
      if Obs.metrics_enabled () then
        Obs.observe h_task_latency
          (int_of_float ((Unix.gettimeofday () -. t_start) *. 1e6));
      r
    in
    let worker () =
      let executed = ref 0 in
      Obs.span "pool.worker"
        ~result:(fun () -> [ ("tasks", Obs.Int !executed) ])
        (fun () ->
          let w = make () in
          let rec go () =
            let i = Atomic.fetch_and_add cursor 1 in
            if i < n then begin
              results.(i) <- run_task w i;
              incr executed;
              go ()
            end
          in
          go ())
    in
    let spawned =
      List.init
        (min jobs n - 1)
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (* first failure by index wins; otherwise collect in order *)
    Array.iter (function Raised e -> raise e | _ -> ()) results;
    Array.to_list
      (Array.map
         (function Done v -> v | Pending | Raised _ -> assert false)
         results)
  end

(* {1 Persistent service pool}

   [map_arena] is a batch construct: it owns its workers for one call.  A
   long-lived daemon instead needs workers that outlive any one request
   and pull from a queue whose discipline the caller controls (admission
   control, per-client fairness).  [Service] is exactly that and nothing
   more: [jobs] domains looping on a caller-supplied blocking [pull].
   The queueing policy, and therefore all synchronization around it, stays
   with the caller — the pool only guarantees that a task that raises
   never kills its worker. *)

module Service = struct
  exception Fatal of exn

  type stats = { total : int; alive : int; lost : int; respawns : int }

  type t = {
    lock : Mutex.t;
    jobs : int;
    mutable domains : unit Domain.t list;
        (* every domain ever spawned for this service, replacements
           included — [join] drains this list until it stops growing *)
    mutable alive : int;
    mutable lost : int;
    mutable respawns : int;
  }

  let c_service_tasks = Obs.counter "pool.service.tasks"
  let c_service_crashes = Obs.counter "pool.service.task_crashes"
  let c_service_lost = Obs.counter "pool.service.worker_lost"

  let start ~jobs ~pull =
    if jobs < 1 then invalid_arg "Pool.Service.start: jobs < 1";
    let t =
      {
        lock = Mutex.create ();
        jobs;
        domains = [];
        alive = 0;
        lost = 0;
        respawns = 0;
      }
    in
    (* A worker that loses its domain to [Fatal] spawns its own
       replacement before dying — supervision without a supervisor
       thread.  The replacement is registered under the lock so [join]
       and [stats] always see it, and capacity ([alive]) never dips:
       the dying worker hands its slot straight to the new one. *)
    let rec worker () =
      let down e =
        Obs.incr c_service_lost;
        if Obs.recording () then
          (* the trace context the caller's [pull] installed for the task
             that killed this worker is still set on the dying domain, so
             the instant names the request that was in hand *)
          Obs.instant "pool.service.worker_lost"
            ~args:
              (let exn = [ ("exn", Obs.Str (Printexc.to_string e)) ] in
               match Obs.trace_context () with
               | None -> exn
               | Some id -> ("trace", Obs.Str id) :: exn);
        Mutex.lock t.lock;
        t.lost <- t.lost + 1;
        t.respawns <- t.respawns + 1;
        t.domains <- Domain.spawn worker :: t.domains;
        Mutex.unlock t.lock
      in
      let retire () =
        Mutex.lock t.lock;
        t.alive <- t.alive - 1;
        Mutex.unlock t.lock
      in
      let rec go () =
        match pull () with
        | None -> retire ()
        | Some task -> (
            match
              try
                Obs.span "pool.service.task" task;
                Obs.incr c_service_tasks;
                None
              with
              | Fatal e -> Some e
              | _ ->
                  Obs.incr c_service_crashes;
                  None
            with
            | None -> go ()
            | Some e -> down e)
      in
      go ()
    in
    Mutex.lock t.lock;
    t.alive <- jobs;
    t.domains <- List.init jobs (fun _ -> Domain.spawn worker);
    Mutex.unlock t.lock;
    t

  let stats t =
    Mutex.lock t.lock;
    let s =
      { total = t.jobs; alive = t.alive; lost = t.lost; respawns = t.respawns }
    in
    Mutex.unlock t.lock;
    s

  (* The domain list grows while workers are being respawned, so one
     pass is not enough: join what we see, then look again, until a
     pass finds nothing new.  Termination needs [pull] to be returning
     [None] (so replacements retire instead of working). *)
  let join t =
    let rec drain joined =
      Mutex.lock t.lock;
      let batch = List.filter (fun d -> not (List.memq d joined)) t.domains in
      Mutex.unlock t.lock;
      match batch with
      | [] -> ()
      | ds ->
          List.iter Domain.join ds;
          drain (ds @ joined)
    in
    drain []
end

let map ~jobs f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  map_arena ~jobs ~make:(fun () -> ()) (fun () x -> f x) items

let default_jobs () = Domain.recommended_domain_count ()
