(* The control union (paper Fig. 6).

   Per-instruction synthesis yields, for every hole, a concrete bitvector
   per instruction.  The union groups instructions by value and emits a
   nested if-then-else over per-instruction precondition wires:

     pre_add  := <decode of ADD over datapath wires>
     ...
     write_register := if (pre_add or pre_load) then 1'x1 else ...

   (Fig. 6's pseudo-code transposes the branches of its IfThenElse; we follow
   the paper's worked example, which selects the head value when the head
   condition holds.)  The final group's value becomes the default arm, which
   is equivalent under the instruction-independence conditions: mutually
   exclusive preconditions covering all decodable states. *)

type group = { value : Bitvec.t; instrs : string list }

type hole_result = { hole : string; groups : group list }

(* [group_results per_instr hole_names] pivots a per-instruction value map
   (instr -> hole -> value) into per-hole value groups, preserving
   instruction order. *)
let group_results (per_instr : (string * (string * Bitvec.t) list) list)
    (hole_names : string list) : hole_result list =
  List.map
    (fun hole ->
      let groups = ref [] in
      List.iter
        (fun (iname, assignment) ->
          match List.assoc_opt hole assignment with
          | None -> ()
          | Some v -> (
              match
                List.find_opt (fun g -> Bitvec.equal g.value v) !groups
              with
              | Some g ->
                  groups :=
                    List.map
                      (fun g' ->
                        if g' == g then { g' with instrs = g'.instrs @ [ iname ] }
                        else g')
                      !groups
              | None -> groups := !groups @ [ { value = v; instrs = [ iname ] } ]))
        per_instr;
      { hole; groups = !groups })
    hole_names

let pre_wire_name iname =
  "pre_" ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) iname

(* Order groups so the most populous value becomes the final (default) arm:
   under mutually exclusive preconditions the chain is equivalent in any
   order, and this choice needs the fewest precondition wires. *)
let order_for_default groups =
  match groups with
  | [] | [ _ ] -> groups
  | _ ->
      let biggest =
        List.fold_left
          (fun best g ->
            match best with
            | Some b when List.length b.instrs >= List.length g.instrs -> best
            | _ -> Some g)
          None groups
        |> Option.get
      in
      List.filter (fun g -> g != biggest) groups @ [ biggest ]

(* LogicGen of Fig. 6: nested if-then-else over grouped values. *)
let rec logic_gen (groups : group list) : Oyster.Ast.expr =
  match groups with
  | [] -> Synth_error.fail "Union.logic_gen: no synthesis results"
  | [ g ] -> Oyster.Ast.Const g.value
  | g :: rest ->
      let cond =
        match List.map (fun i -> Oyster.Ast.Var (pre_wire_name i)) g.instrs with
        | [] -> assert false
        | c :: cs ->
            List.fold_left (fun acc c -> Oyster.Ast.Binop (Oyster.Ast.Or, acc, c)) c cs
      in
      Oyster.Ast.Ite (cond, Oyster.Ast.Const g.value, logic_gen rest)

(* [apply design ~pre_exprs ~shared ~per_instr] completes the design:
   - a [pre_<instr>] wire per instruction that appears in some group,
   - every Per_instruction hole bound to its nested ite,
   - every Shared hole bound to its single constant.

   Returns the completed design (typechecked) and the bindings used. *)
let apply (design : Oyster.Ast.design)
    ~(pre_exprs : (string * Oyster.Ast.expr) list)
    ~(shared : (string * Bitvec.t) list)
    ~(per_instr : (string * (string * Bitvec.t) list) list) =
  let hole_decls = Oyster.Ast.holes design in
  let per_holes =
    List.filter_map
      (fun (h : Oyster.Ast.hole_decl) ->
        match h.Oyster.Ast.kind with
        | Oyster.Ast.Per_instruction -> Some h.Oyster.Ast.hole_name
        | Oyster.Ast.Shared -> None)
      hole_decls
  in
  let results =
    group_results per_instr per_holes
    |> List.map (fun r -> { r with groups = order_for_default r.groups })
  in
  (* only materialize pre wires that some hole's logic actually tests *)
  let used_instrs =
    List.concat_map
      (fun r ->
        match r.groups with
        | [] | [ _ ] -> []
        | gs ->
            (* the last group is the default arm: its instructions need no wire *)
            List.concat_map (fun g -> g.instrs)
              (List.filteri (fun i _ -> i < List.length gs - 1) gs))
      results
    |> List.sort_uniq String.compare
  in
  let pre_defs =
    List.filter_map
      (fun iname ->
        match List.assoc_opt iname pre_exprs with
        | Some e -> Some (pre_wire_name iname, 1, e)
        | None -> None)
      used_instrs
  in
  (if List.length pre_defs <> List.length used_instrs then
     Synth_error.fail
       "Union.apply: missing precondition expression for an instruction");
  let bindings =
    List.map (fun r -> (r.hole, logic_gen r.groups)) results
    @ List.map (fun (h, v) -> (h, Oyster.Ast.Const v)) shared
  in
  let design = Oyster.Ast.insert_wires design pre_defs in
  let design = Oyster.Ast.fill_holes design bindings in
  (* reconstructed preconditions may reference wires assigned late in the
     original order (e.g. output aliases); re-schedule combinationally *)
  let design = Oyster.Ast.schedule design in
  ignore (Oyster.Typecheck.check design);
  (design, bindings)
