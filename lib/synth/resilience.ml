(* The escalating retry ladder.  See the interface for the contract; the
   only subtlety here is saturation: budgets are habitually [max_int], so
   every multiplication and power clamps instead of overflowing. *)

type policy = {
  retries : int;
  escalation_factor : int;
  validate_models : bool;
}

let default = { retries = 2; escalation_factor = 4; validate_models = false }

let make ?(retries = default.retries)
    ?(escalation_factor = default.escalation_factor)
    ?(validate_models = default.validate_models) () =
  if retries < 0 then invalid_arg "Resilience.make: retries < 0";
  if escalation_factor < 1 then
    invalid_arg "Resilience.make: escalation_factor < 1";
  { retries; escalation_factor; validate_models }

let attempts p = p.retries + 1
let is_final p ~attempt = attempt >= attempts p

let mul_sat a b =
  if a <= 0 || b <= 0 then 0
  else if a > max_int / b then max_int
  else a * b

let pow_sat base n =
  let rec go acc n = if n <= 0 then acc else go (mul_sat acc base) (n - 1) in
  go 1 n

(* The first rung: total divided down by factor^retries, so the whole
   ladder (a geometric series summing to < total * f/(f-1) of the first
   rung... i.e. roughly total) stays within the pool even if every rung
   runs dry.  Never below one conflict. *)
let first_budget p ~total =
  max 1 (total / pow_sat p.escalation_factor p.retries)

let attempt_budget p ~total ~remaining ~attempt =
  if is_final p ~attempt then remaining
  else
    min remaining
      (mul_sat (first_budget p ~total)
         (pow_sat p.escalation_factor (attempt - 1)))

let slice_deadline p ~now ~hard ~tasks_left ~attempt =
  match hard with
  | None -> None
  | Some h ->
      if is_final p ~attempt then Some h
      else
        let share = (h -. now) /. float_of_int (max 1 tasks_left) in
        let share =
          share *. float_of_int (pow_sat p.escalation_factor (attempt - 1))
        in
        Some (min h (now +. share))
