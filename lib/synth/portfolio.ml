(* Portfolio racing and cube-and-conquer for hard solver queries.

   Two attack modes on the queries where one CDCL schedule stalls:

   - [racers > 1]: N diversified strategies (Strategy.diversify) race the
     same conjunction on pool domains, periodically publishing LBD-filtered
     glue clauses to a shared blackboard and importing each other's.  The
     first racer to finish claims an atomic winner slot; the rest observe
     the claim between budget slices and stand down (cooperative
     cancellation — nothing is killed mid-propagation).

   - [cube_vars = k > 0]: cube-and-conquer for the ∀-verify direction.
     A disjunctive goal (the ∀-verify query is "some instruction
     violates its contract") is split structurally: up to 2^k groups of
     disjuncts, each an independent sub-query, Unsat iff all are —
     recovering the paper's per-instruction decomposition from the
     monolithic query.  Otherwise a probe session picks the k
     highest-occurrence SAT variables and the 2^k sign cubes fan across
     the pool as assumption lists.

   Determinism contract: both modes accelerate only the Unsat direction.
   A Sat verdict is re-derived by a sequential base-strategy check before
   being returned, so bindings are bit-identical to sequential solving no
   matter which racer or cube got there first.  (CEGIS guidance queries
   are cheap-Sat; the hard monolithic queries are Unsat-heavy, which is
   where the race actually pays.)

   Clause-sharing soundness: blasting is deterministic, so racer sessions
   asserting the same terms in the same order allocate identical variable
   numberings — a learned clause from one racer is a consequence of the
   same problem clauses in every other.  [Session.import_learnt]'s bounds
   check catches (and counts) anything that violates this. *)

type options = {
  racers : int;
  cube_vars : int;
  share_interval : int;
  share_max_lbd : int;
}

let default =
  { racers = 1; cube_vars = 0; share_interval = 2000; share_max_lbd = 4 }

let with_racers racers o =
  if racers < 1 then invalid_arg "Portfolio.with_racers: racers < 1";
  { o with racers }

let with_cube_vars cube_vars o =
  if cube_vars < 0 || cube_vars > 12 then
    invalid_arg "Portfolio.with_cube_vars: cube_vars outside 0..12";
  { o with cube_vars }

let with_share_interval share_interval o =
  if share_interval < 1 then
    invalid_arg "Portfolio.with_share_interval: interval < 1";
  { o with share_interval }

let with_share_max_lbd share_max_lbd o =
  if share_max_lbd < 0 then
    invalid_arg "Portfolio.with_share_max_lbd: bound < 0";
  { o with share_max_lbd }

let enabled o = o.racers > 1 || o.cube_vars > 0

(* {1 Tally} *)

type tally = {
  lock : Mutex.t;
  mutable races : int;
  mutable race_sat : int;
  mutable race_unsat : int;
  mutable race_unknown : int;
  wins : (int, int) Hashtbl.t;  (* racer index -> races won *)
  mutable shared_out : int;
  mutable shared_in : int;
  mutable shared_dropped : int;
  mutable cube_calls : int;
  mutable cubes : int;
  mutable cubes_sat : int;
  mutable cubes_unsat : int;
  mutable cubes_unknown : int;
}

type summary = {
  races : int;
  race_sat : int;
  race_unsat : int;
  race_unknown : int;
  win_counts : (int * int) list;
  shared_out : int;
  shared_in : int;
  shared_dropped : int;
  cube_calls : int;
  cubes : int;
  cubes_sat : int;
  cubes_unsat : int;
  cubes_unknown : int;
}

let create_tally () =
  {
    lock = Mutex.create ();
    races = 0;
    race_sat = 0;
    race_unsat = 0;
    race_unknown = 0;
    wins = Hashtbl.create 8;
    shared_out = 0;
    shared_in = 0;
    shared_dropped = 0;
    cube_calls = 0;
    cubes = 0;
    cubes_sat = 0;
    cubes_unsat = 0;
    cubes_unknown = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let read_tally t =
  locked t (fun () ->
      let win_counts =
        Hashtbl.fold (fun i n acc -> (i, n) :: acc) t.wins []
        |> List.sort compare
      in
      {
        races = t.races;
        race_sat = t.race_sat;
        race_unsat = t.race_unsat;
        race_unknown = t.race_unknown;
        win_counts;
        shared_out = t.shared_out;
        shared_in = t.shared_in;
        shared_dropped = t.shared_dropped;
        cube_calls = t.cube_calls;
        cubes = t.cubes;
        cubes_sat = t.cubes_sat;
        cubes_unsat = t.cubes_unsat;
        cubes_unknown = t.cubes_unknown;
      })

(* {1 Observability} *)

let c_races = Obs.counter "portfolio.races"
let c_shared_out = Obs.counter "portfolio.shared_out"
let c_shared_in = Obs.counter "portfolio.shared_in"
let c_cube_calls = Obs.counter "portfolio.cube_calls"
let c_cubes = Obs.counter "portfolio.cubes"

(* {1 Stats plumbing} *)

let add_stats (a : Solver.stats) (b : Solver.stats) : Solver.stats =
  {
    sat_vars = a.sat_vars + b.sat_vars;
    sat_clauses = a.sat_clauses + b.sat_clauses;
    sat_conflicts = a.sat_conflicts + b.sat_conflicts;
    sat_restarts = a.sat_restarts + b.sat_restarts;
    sat_learnt_kept = a.sat_learnt_kept + b.sat_learnt_kept;
    sat_learnt_deleted = a.sat_learnt_deleted + b.sat_learnt_deleted;
    sat_subsumed = a.sat_subsumed + b.sat_subsumed;
    sat_strengthened = a.sat_strengthened + b.sat_strengthened;
    sat_vivified = a.sat_vivified + b.sat_vivified;
    sat_eliminated = a.sat_eliminated + b.sat_eliminated;
    sat_rephases = a.sat_rephases + b.sat_rephases;
    trivially_unsat = a.trivially_unsat || b.trivially_unsat;
  }

let retag (o : Solver.outcome) stats : Solver.outcome =
  match o with
  | Solver.Sat (m, _) -> Solver.Sat (m, stats)
  | Solver.Unsat _ -> Solver.Unsat stats
  | Solver.Unknown _ -> Solver.Unknown stats

(* {1 The sharing blackboard}

   An append-only list of (origin racer, clause), newest first, with a
   monotone count.  Each racer remembers how many entries it has seen and
   takes only the newer ones, skipping its own.  A canonical-key table
   keeps duplicate discoveries (two racers learning the same glue) from
   accumulating. *)

type board = {
  block : Mutex.t;
  mutable entries : (int * int list) list;  (* newest first *)
  mutable count : int;
  keys : (int list, unit) Hashtbl.t;  (* canonical (sorted) clauses seen *)
}

let board_create () =
  {
    block = Mutex.create ();
    entries = [];
    count = 0;
    keys = Hashtbl.create 256;
  }

let clause_key c = List.sort compare c

(* Returns how many of [clauses] were actually published (new to the
   board). *)
let board_publish b origin clauses =
  Mutex.lock b.block;
  let fresh =
    List.filter
      (fun c ->
        let k = clause_key c in
        if Hashtbl.mem b.keys k then false
        else (
          Hashtbl.add b.keys k ();
          true))
      clauses
  in
  List.iter
    (fun c ->
      b.entries <- (origin, c) :: b.entries;
      b.count <- b.count + 1)
    fresh;
  Mutex.unlock b.block;
  List.length fresh

(* Entries newer than [seen], excluding those [origin] itself published;
   returns (clauses, new seen count). *)
let board_take b origin seen =
  Mutex.lock b.block;
  let count = b.count in
  let fresh = count - seen in
  let rec take n acc = function
    | (o, c) :: rest when n > 0 ->
        take (n - 1) (if o = origin then acc else c :: acc) rest
    | _ -> acc
  in
  let clauses = take fresh [] b.entries in
  Mutex.unlock b.block;
  (clauses, count)

(* {1 Racing} *)

(* One racer's loop: solve in [share_interval]-conflict slices, and
   between slices poll the winner slot and the caller's cancel token,
   import newly published glue, and publish our own.  Returns nothing;
   the winner communicates through [winner]/[win_outcome] (the CAS claim
   happens-before the post-join read via domain join). *)
let run_racer ~opts ~tally ~cancel ~budget ~deadline ~strategy ~winner
    ~win_outcome ~board terms i =
  let strat = Solver.Strategy.diversify i strategy in
  let s = Solver.Session.create ~config:(Solver.Strategy.sat_config strat) () in
  List.iter (fun t -> Solver.Session.assert_always s t) terms;
  let published = Hashtbl.create 64 in
  let seen = ref 0 in
  let spent = ref 0 in
  let acc = ref Solver.empty_stats in
  let deadline_passed () =
    match deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  let share_in () =
    if strat.Solver.Strategy.share_in then (
      let clauses, count = board_take board i !seen in
      seen := count;
      if clauses <> [] then (
        let before_drop = Solver.Session.import_dropped s in
        let imported = Solver.Session.import_learnt s clauses in
        let dropped = Solver.Session.import_dropped s - before_drop in
        Obs.incr ~by:imported c_shared_in;
        match tally with
        | Some t ->
            locked t (fun () ->
                t.shared_in <- t.shared_in + imported;
                t.shared_dropped <- t.shared_dropped + dropped)
        | None -> ()))
  in
  let share_out () =
    if strat.Solver.Strategy.share_out then (
      let glue =
        Solver.Session.export_learnt ~max_lbd:opts.share_max_lbd s
        |> List.filter (fun c ->
               let k = clause_key c in
               if Hashtbl.mem published k then false
               else (
                 Hashtbl.add published k ();
                 true))
      in
      if glue <> [] then (
        let fresh = board_publish board i glue in
        Obs.incr ~by:fresh c_shared_out;
        match tally with
        | Some t -> locked t (fun () -> t.shared_out <- t.shared_out + fresh)
        | None -> ()))
  in
  let rec loop () =
    if Atomic.get winner >= 0 || cancel () || deadline_passed () then ()
    else
      let slice = min opts.share_interval (budget - !spent) in
      if slice <= 0 then ()
      else (
        share_in ();
        let o = Solver.Session.check_with ~budget:slice ?deadline s [] in
        acc := add_stats !acc (Solver.stats_of o);
        spent := !spent + (Solver.stats_of o).Solver.sat_conflicts;
        match o with
        | Solver.Unknown _ ->
            (* slice exhausted (or deadline hit — the loop head catches
               that); publish what this slice learned and go around *)
            share_out ();
            loop ()
        | o ->
            if Atomic.compare_and_set winner (-1) i then
              win_outcome := retag o !acc)
  in
  loop ()

let race ~opts ~tally ~cancel ~budget ~deadline ~jobs ~strategy terms =
  let n = opts.racers in
  let winner = Atomic.make (-1) in
  let win_outcome = ref (Solver.Unknown Solver.empty_stats) in
  let board = board_create () in
  let jobs = max 1 (min jobs n) in
  Obs.incr c_races;
  let run () =
    ignore
      (Pool.map_arena ~jobs
         ~make:(fun () -> ())
         (fun () i ->
           run_racer ~opts ~tally ~cancel ~budget ~deadline ~strategy ~winner
             ~win_outcome ~board terms i)
         (List.init n Fun.id))
  in
  Obs.span "portfolio.race"
    ~args:
      [
        ("racers", Obs.Int n);
        ("jobs", Obs.Int jobs);
        ("base", Obs.Str (Solver.Strategy.describe strategy));
      ]
    ~result:(fun () ->
      [
        ("winner", Obs.Int (Atomic.get winner));
        ("verdict", Obs.Str (Solver.outcome_name !win_outcome));
      ])
    run;
  let w = Atomic.get winner in
  let outcome =
    if w >= 0 then !win_outcome else Solver.Unknown Solver.empty_stats
  in
  (match tally with
  | Some t ->
      locked t (fun () ->
          t.races <- t.races + 1;
          if w >= 0 then
            Hashtbl.replace t.wins w
              (1 + Option.value ~default:0 (Hashtbl.find_opt t.wins w));
          match outcome with
          | Solver.Sat _ -> t.race_sat <- t.race_sat + 1
          | Solver.Unsat _ -> t.race_unsat <- t.race_unsat + 1
          | Solver.Unknown _ -> t.race_unknown <- t.race_unknown + 1)
  | None -> ());
  (w, outcome)

(* {1 Cube and conquer} *)

(* Flatten a width-1 or-tree into its disjuncts (left-to-right, so the
   split is deterministic for a fixed term). *)
let rec disjuncts (t : Term.t) acc =
  match t.Term.node with
  | Term.Binop (Term.Or, a, b) when Term.width t = 1 ->
      disjuncts a (disjuncts b acc)
  | _ -> t :: acc

(* [xs] split into [n] contiguous groups whose sizes differ by at most
   one (the first [len mod n] groups get the extra element). *)
let partition n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec go i rest =
    if i >= n then []
    else
      let take = base + if i < extra then 1 else 0 in
      let rec split k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | x :: rest -> split (k - 1) (x :: acc) rest
          | [] -> (List.rev acc, [])
      in
      let g, rest = split take [] rest in
      g :: go (i + 1) rest
  in
  go 0 xs |> List.filter (( <> ) [])

let cube_check ~opts ~tally ~cancel ~budget ~deadline ~jobs ~strategy
    ~derive_sat terms =
  let cfg = Solver.Strategy.sat_config strategy in
  let seq () = Solver.check ~config:cfg ~budget ?deadline terms in
  (* Shared verdict logic for both splitting modes: [results] holds one
     entry per cube (None when skipped after an early Sat or a cancel). *)
  let conclude ncubes results =
    let solved = List.filter_map Fun.id results in
    let stats =
      List.fold_left
        (fun acc o -> add_stats acc (Solver.stats_of o))
        Solver.empty_stats solved
    in
    let n_sat =
      List.length
        (List.filter (function Solver.Sat _ -> true | _ -> false) solved)
    in
    let n_unsat =
      List.length
        (List.filter (function Solver.Unsat _ -> true | _ -> false) solved)
    in
    let n_unknown = ncubes - n_sat - n_unsat in
    (match tally with
    | Some t ->
        locked t (fun () ->
            t.cube_calls <- t.cube_calls + 1;
            t.cubes <- t.cubes + ncubes;
            t.cubes_sat <- t.cubes_sat + n_sat;
            t.cubes_unsat <- t.cubes_unsat + n_unsat;
            t.cubes_unknown <- t.cubes_unknown + n_unknown)
    | None -> ());
    if n_sat > 0 then
      if derive_sat then
        (* some cube is satisfiable, so the query is: re-derive the
           model with the sequential base strategy for
           schedule-independent bindings *)
        seq ()
      else
        (* any cube's model is a model of the query; callers that opt
           out of re-derivation only want the verdict *)
        List.find (function Solver.Sat _ -> true | _ -> false) solved
    else if n_unsat = ncubes then Solver.Unsat stats
    else Solver.Unknown stats
  in
  (* Structural cubes first: when a goal term is a disjunction (the
     ∀-verify query is "some instruction violates its contract"),
     ∨-elimination splits it exactly — the query is Unsat iff it is
     Unsat with each group of disjuncts in place of the whole
     disjunction, and any group's model is a model of the original.
     Unlike variable cubes (below), which restrict one shared search
     space, each group re-blasts only the cones its own disjuncts
     reach, so the split sidesteps the disjunct interleaving that makes
     the monolithic query hard: it recovers the paper's per-instruction
     decomposition automatically.  Group count is capped at
     [2^cube_vars], so the fan-out knob means the same thing in both
     modes. *)
  let disjunctive_goal =
    let rec pick seen = function
      | [] -> None
      | t :: rest -> (
          match disjuncts t [] with
          | _ :: _ :: _ as ds ->
              Some (List.rev_append seen rest, ds)
          | _ -> pick (t :: seen) rest)
    in
    pick [] terms
  in
  match disjunctive_goal with
  | Some (others, ds) ->
      let groups = partition (min (1 lsl opts.cube_vars) (List.length ds)) ds in
      let ncubes = List.length groups in
      Obs.incr c_cube_calls;
      Obs.incr ~by:ncubes c_cubes;
      let sat_found = Atomic.make false in
      let run () =
        Pool.map_arena ~jobs
          ~make:(fun () -> ())
          (fun () group ->
            if Atomic.get sat_found || cancel () then None
            else
              let o =
                Solver.check ~config:cfg ~budget ?deadline
                  (others @ [ Term.disj group ])
              in
              (match o with
              | Solver.Sat _ -> Atomic.set sat_found true
              | _ -> ());
              Some o)
          groups
      in
      let results =
        Obs.span "portfolio.cube"
          ~args:
            [
              ("cube_vars", Obs.Int opts.cube_vars);
              ("cubes", Obs.Int ncubes);
              ("jobs", Obs.Int jobs);
              ("structural", Obs.Bool true);
            ]
          run
      in
      conclude ncubes results
  | None -> (
      (* A probe session picks the branching variables; worker sessions
         re-blast the same terms in the same order, so the probe's
         variable numbering is theirs too. *)
      let probe = Solver.Session.create ~config:cfg () in
      List.iter (fun t -> Solver.Session.assert_always probe t) terms;
      match Solver.Session.top_vars probe opts.cube_vars with
      | [] -> seq ()
      | vars ->
          let m = List.length vars in
          let ncubes = 1 lsl m in
          let cubes =
            List.init ncubes (fun mask ->
                List.mapi
                  (fun j v -> if mask land (1 lsl j) <> 0 then v else -v)
                  vars)
          in
          Obs.incr c_cube_calls;
          Obs.incr ~by:ncubes c_cubes;
          let sat_found = Atomic.make false in
          let run () =
            Pool.map_arena ~jobs
              ~make:(fun () -> ref None)
              (fun cell cube ->
                if Atomic.get sat_found || cancel () then None
                else
                  let s =
                    match !cell with
                    | Some s -> s
                    | None ->
                        let s = Solver.Session.create ~config:cfg () in
                        List.iter
                          (fun t -> Solver.Session.assert_always s t)
                          terms;
                        cell := Some s;
                        s
                  in
                  let assumptions = List.map (Solver.Session.lit_guard s) cube in
                  let o =
                    Solver.Session.check_with ~assumptions ~budget ?deadline s []
                  in
                  (match o with
                  | Solver.Sat _ -> Atomic.set sat_found true
                  | _ -> ());
                  Some o)
              cubes
          in
          let results =
            Obs.span "portfolio.cube"
              ~args:
                [
                  ("cube_vars", Obs.Int m);
                  ("cubes", Obs.Int ncubes);
                  ("jobs", Obs.Int jobs);
                  ("structural", Obs.Bool false);
                ]
              run
          in
          conclude ncubes results)

(* {1 Entry point} *)

let check ?(options = default) ?tally ?(cancel = fun () -> false) ?budget
    ?deadline ?(derive_sat = true) ~jobs ~strategy terms =
  let budget = Option.value budget ~default:max_int in
  let cfg = Solver.Strategy.sat_config strategy in
  if options.cube_vars > 0 then
    cube_check ~opts:options ~tally ~cancel ~budget ~deadline ~jobs ~strategy
      ~derive_sat terms
  else if options.racers > 1 then
    match
      race ~opts:options ~tally ~cancel ~budget ~deadline ~jobs ~strategy terms
    with
    | _, (Solver.Unsat _ as o) -> o
    | _, (Solver.Sat _ as o) ->
        if derive_sat then
          (* re-derive the model sequentially: racers run diversified
             schedules, so the winning model is schedule-dependent — the
             base-strategy check is not *)
          Solver.check ~config:cfg ~budget ?deadline terms
        else o
    | _, (Solver.Unknown _ as o) -> o
  else Solver.check ~config:cfg ~budget ?deadline terms
