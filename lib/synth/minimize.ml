(* Don't-care minimization of synthesized control — the paper's §5.3
   future-work direction ("generate HDL code that is correct and also
   optimal with respect to some objective function").

   Per-instruction synthesis assigns every hole a concrete value for every
   instruction, including holes the instruction does not constrain (for
   ADD, the branch comparator select is a don't-care).  The control union
   then splits value groups unnecessarily, inflating both the generated
   HDL and the synthesized circuit.

   This pass shrinks the result: per hole, instructions are greedily moved
   into the most popular value group whenever re-verification proves the
   changed value still satisfies that instruction's correctness condition.
   Each check is one (small) UNSAT query, so the pass stays cheap relative
   to synthesis, and the result is still correct by construction — every
   adopted value is verified, never assumed. *)

type stats = {
  mutable checks : int;
  mutable merged : int;  (* (instruction, hole) pairs moved to a shared value *)
  mutable wall_seconds : float;
}

type result = { solved : Engine.solved; minimize_stats : stats }

(* an alias of the shared synthesis failure so one CLI handler catches
   both engine and minimizer errors *)
exception Minimize_error = Synth_error.Engine_error

let popular_value values =
  (* most frequent Bitvec in a list; ties break to the first seen *)
  let groups : (Bitvec.t * int ref) list ref = ref [] in
  List.iter
    (fun v ->
      match List.find_opt (fun (g, _) -> Bitvec.equal g v) !groups with
      | Some (_, n) -> incr n
      | None -> groups := !groups @ [ (v, ref 1) ])
    values;
  match
    List.fold_left
      (fun best (v, n) ->
        match best with
        | Some (_, bn) when bn >= !n -> best
        | _ -> Some (v, !n))
      None !groups
  with
  | Some (v, _) -> v
  | None -> raise (Minimize_error "no values")

let run ?(budget = max_int) (problem : Engine.problem) (solved : Engine.solved) :
    result =
  let t0 = Unix.gettimeofday () in
  let stats = { checks = 0; merged = 0; wall_seconds = 0.0 } in
  let trace =
    Oyster.Symbolic.eval ~prefix:(Engine.problem_prefix problem)
      problem.Engine.design ~cycles:problem.Engine.af.Ila.Absfun.cycles
  in
  let conds = Ila.Conditions.compile problem.Engine.spec problem.Engine.af trace in
  let hole_term name =
    match List.assoc_opt name trace.Oyster.Symbolic.hole_terms with
    | Some t -> (
        match t.Term.node with
        | Term.Var v -> v
        | _ -> raise (Minimize_error "hole is not a variable"))
    | None -> trace.Oyster.Symbolic.prefix ^ "hole!" ^ name
  in
  (* mutable copy of the per-instruction assignments *)
  let assignment : (string, (string, Bitvec.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (iname, holes) ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun (h, v) -> Hashtbl.replace tbl h v) holes;
      Hashtbl.replace assignment iname tbl)
    solved.Engine.per_instr;
  let shared_tbl = Hashtbl.create 8 in
  List.iter
    (fun (h, v) -> Hashtbl.replace shared_tbl (hole_term h) v)
    solved.Engine.shared;
  let verifies iname =
    (* substitute the instruction's current hole values (plus the shared
       ones) into its violation formula and check unsatisfiability *)
    let c =
      List.find (fun c -> c.Ila.Conditions.instr_name = iname) conds
    in
    let tbl = Hashtbl.find assignment iname in
    let env =
      {
        Term.lookup_var =
          (fun n _w ->
            match Hashtbl.find_opt shared_tbl n with
            | Some v -> Some v
            | None ->
                Hashtbl.fold
                  (fun h v acc ->
                    if acc = None && String.equal n (hole_term h) then Some v
                    else acc)
                  tbl None);
        Term.lookup_read = (fun _ _ -> None);
      }
    in
    let violation =
      Term.band c.Ila.Conditions.pre
        (Term.band c.Ila.Conditions.assumes (Term.bnot c.Ila.Conditions.post))
    in
    stats.checks <- stats.checks + 1;
    match Solver.check ~budget [ Term.substitute env violation ] with
    | Solver.Unsat _ -> true
    | Solver.Sat _ -> false
    | Solver.Unknown _ -> false
  in
  let hole_names =
    match solved.Engine.per_instr with
    | (_, holes) :: _ -> List.map fst holes
    | [] -> []
  in
  let instr_names = List.map fst solved.Engine.per_instr in
  List.iter
    (fun h ->
      let target =
        popular_value
          (List.map (fun i -> Hashtbl.find (Hashtbl.find assignment i) h) instr_names)
      in
      List.iter
        (fun i ->
          let tbl = Hashtbl.find assignment i in
          let current = Hashtbl.find tbl h in
          if not (Bitvec.equal current target) then begin
            Hashtbl.replace tbl h target;
            if verifies i then stats.merged <- stats.merged + 1
            else Hashtbl.replace tbl h current (* revert *)
          end)
        instr_names)
    hole_names;
  (* rebuild the completed design through the same union path *)
  let per_instr =
    List.map
      (fun i ->
        let tbl = Hashtbl.find assignment i in
        (i, List.map (fun h -> (h, Hashtbl.find tbl h)) hole_names))
      instr_names
  in
  let completed, bindings =
    Union.apply problem.Engine.design ~pre_exprs:solved.Engine.pre_exprs
      ~shared:solved.Engine.shared ~per_instr
  in
  stats.wall_seconds <- Unix.gettimeofday () -. t0;
  {
    solved = { solved with Engine.completed; bindings; per_instr };
    minimize_stats = stats;
  }
