(** A fixed-size Domain worker pool for independent synthesis jobs.

    The synthesis engine uses this to fan independent per-instruction CEGIS
    loops and verification queries out across cores (paper §3.3.1: the
    queries are independent, so nothing orders them).  The pool is
    deliberately minimal: a shared atomic task cursor, [jobs - 1] spawned
    domains plus the calling domain, results returned in input order. *)

val map_arena :
  jobs:int ->
  make:(unit -> 'w) ->
  ?retries:int ->
  ?retried:int Atomic.t ->
  ('w -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map_arena ~jobs ~make f items] is {!map} with per-worker state: each
    worker domain calls [make ()] once before pulling tasks, and every
    task that worker executes receives that worker's state as the first
    argument.  The engine uses this to give each domain a private
    {!Solver.Arena} — incremental solver sessions are unlocked
    single-owner state, so they are allocated per worker and never cross
    domains.  Which tasks share a worker's state depends on the dynamic
    schedule; state must therefore only carry caches or other
    result-invariant context.

    A task that raises is re-executed up to [retries] times (default 0),
    each retry on a fresh [make ()] state — a crashed attempt may have
    left the worker's state mid-mutation, so it is abandoned for that
    task.  Each retry increments [retried] when given, so callers can
    surface recovery counts in their statistics.  Every attempt first
    passes the {!Fault.on_task} crash-injection point, which is how
    simulated worker crashes exercise exactly this path.  Only a task
    whose every attempt raised counts as failed; exception and ordering
    behavior for such tasks are exactly {!map}'s (lowest-indexed failing
    task re-raised after all workers join).  Raises [Invalid_argument] if
    [retries < 0]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, running up to [jobs]
    applications concurrently, and returns the results in input order.

    With [jobs = 1] no domain is spawned and the applications run inline,
    in order — a true serial fallback.  If one or more applications raise,
    every task still runs to completion and the exception of the
    lowest-indexed failing task is re-raised after all workers have joined,
    so blame is deterministic.  Raises [Invalid_argument] if [jobs < 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [-j] default. *)

(** Long-lived worker domains for a request-serving daemon.

    Unlike {!map_arena}, whose workers exist for one batch, a service pool
    runs until the work source it was given runs dry.  The queueing policy
    lives entirely with the caller: the daemon keeps its own bounded,
    per-client-fair queue and hands the pool just a blocking [pull]. *)
module Service : sig
  type t

  exception Fatal of exn
  (** A task raises [Fatal e] to declare its worker domain unusable
      (simulating — or reacting to — a worker death).  The worker spawns
      its own replacement and dies; the service's capacity recovers and
      the loss shows up in {!stats} and the [pool.service.worker_lost]
      counter.  Any other exception from a task is swallowed (counted as
      [pool.service.task_crashes]): one bad request must not take a
      worker down with it. *)

  type stats = {
    total : int;  (** worker slots configured at {!start} *)
    alive : int;  (** workers currently running (replacements included) *)
    lost : int;  (** cumulative {!Fatal} worker deaths *)
    respawns : int;  (** replacements spawned; equals [lost] today *)
  }

  val start : jobs:int -> pull:(unit -> (unit -> unit) option) -> t
  (** [start ~jobs ~pull] spawns [jobs] worker domains, each looping
      [pull () |> task ()].  [pull] must be safe to call from multiple
      domains concurrently, should block while no work is available, and
      returns [None] to retire the calling worker (after a shutdown has
      drained the queue, typically).  A task that raises {!Fatal} downs
      its worker, which is respawned (supervision); any other exception
      is counted and dropped.  Raises [Invalid_argument] if
      [jobs < 1]. *)

  val stats : t -> stats
  (** A consistent snapshot of the supervision state — the daemon's
      health report reads worker capacity from here. *)

  val join : t -> unit
  (** Waits for every worker — replacements included — to retire.  Call
      only after arranging for [pull] to return [None] to each of them,
      or [join] blocks forever. *)
end
