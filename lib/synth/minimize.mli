(** Don't-care minimization of synthesized control — the paper's §5.3
    future-work direction of generating control that is "correct and also
    optimal with respect to some objective function".

    Per hole, instructions are greedily moved into the most popular value
    group whenever re-verification (one UNSAT query) proves the changed
    value still satisfies that instruction's correctness condition; the
    result is re-unioned.  Every adopted value is verified, so the output
    is correct by construction like the input. *)

type stats = {
  mutable checks : int;  (** re-verification queries issued *)
  mutable merged : int;  (** (instruction, hole) pairs moved to a shared value *)
  mutable wall_seconds : float;
}

type result = { solved : Engine.solved; minimize_stats : stats }

exception Minimize_error of string
(** An alias of {!Synth_error.Engine_error} (hence of
    [Engine.Engine_error]): all synthesis-layer failures share one
    exception so the CLI reports them uniformly. *)

val run : ?budget:int -> Engine.problem -> Engine.solved -> result
(** [budget] bounds each re-verification query's SAT conflicts; queries that
    exceed it conservatively keep the original value. *)
