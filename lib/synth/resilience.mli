(** Retry policy for solver queries: the escalating ladder.

    A logical query runs as up to [retries + 1] attempts.  Attempt [k]
    gets a conflict budget of [b1 * escalation_factor^(k-1)] (capped by
    the run's remaining pool), where [b1] divides the total budget down so
    the whole ladder stays within it; the final attempt gets everything
    that remains.  Deadlines are sliced the same way: a non-final attempt
    may only spend an escalating share of the time left divided by the
    tasks still outstanding — one hard instruction cannot starve the
    rest — while the final attempt runs to the hard deadline.  The final
    attempt also {e degrades}: it abandons the incremental session for a
    fresh one-shot solver, discarding possibly-bloated learned-clause
    state.

    With the default engine options (unlimited budget, no deadline) every
    attempt is effectively unbounded, so the ladder only matters when a
    fault, a budget, or a deadline is in play — pay-as-you-go. *)

type policy = {
  retries : int;  (** extra attempts after the first; 0 disables the ladder *)
  escalation_factor : int;  (** geometric budget/time growth per attempt *)
  validate_models : bool;
      (** cross-check every [Sat] model by concrete evaluation of the
          asserted terms before trusting it *)
}

val default : policy
(** 2 retries, factor 4, validation off. *)

val make :
  ?retries:int -> ?escalation_factor:int -> ?validate_models:bool -> unit ->
  policy
(** Raises [Invalid_argument] if [retries < 0] or
    [escalation_factor < 1]. *)

val attempts : policy -> int
(** [retries + 1]. *)

val is_final : policy -> attempt:int -> bool
(** Whether 1-based [attempt] is the ladder's last. *)

val attempt_budget : policy -> total:int -> remaining:int -> attempt:int -> int
(** Conflict budget for 1-based [attempt]: the escalating share described
    above, never exceeding [remaining]; the final attempt returns
    [remaining] outright.  All arithmetic saturates, so [total = max_int]
    yields effectively unlimited attempts. *)

val slice_deadline :
  policy ->
  now:float ->
  hard:float option ->
  tasks_left:int ->
  attempt:int ->
  float option
(** Deadline for 1-based [attempt]: [None] if there is no hard deadline;
    the hard deadline itself on the final attempt; otherwise [now] plus an
    escalating share of the remaining time divided by [tasks_left]
    (clamped to the hard deadline). *)
