(** The structured synthesis failure.

    One exception shared by every [lib/synth] module ({!Engine} re-exports
    it as [Engine.Engine_error], {!Minimize} as [Minimize_error]) so the
    CLI can report any synthesis-layer failure uniformly instead of
    crashing on a bare [Failure] or [Invalid_argument]. *)

exception Engine_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Engine_error} with the formatted message. *)
