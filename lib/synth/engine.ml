(* Control logic synthesis (paper §3.3).

   The ∃∀ sketch-filling problem of Equation (1) is decided by CEGIS:

     synth  phase: find hole constants satisfying (Pre -> Post) on every
                   counterexample state collected so far (a ground SAT query
                   over hole bits only);
     verify phase: with holes fixed, search for a state with Pre ∧ ¬Post;
                   UNSAT proves the candidate correct, a model becomes a new
                   counterexample.

   Three strategies, selected by hole kinds and [mode]:

   - independent (Per_instruction mode, no Shared holes): each instruction
     gets its own CEGIS loop over its own copy of the hole constants — the
     paper's §3.3.1 optimization; results are joined by the control union.

   - joint (Per_instruction mode with Shared holes, e.g. FSM state
     encodings): one synthesis loop over all constants, but verification
     stays per-instruction (small queries).

   - monolithic (Monolithic mode, the paper's "without optimization" rows):
     verification is a single query over the disjunction of all instructions'
     violation formulas — the formula whose size makes solving times explode
     (Table 1). *)

type mode = Per_instruction | Monolithic

(* Engine configuration, grouped by concern.  The flat 10-field record
   had outgrown itself: every new knob touched every construction site.
   Callers now start from [default_options] and pipe through [with_*]
   builders, which also centralize validation — a record a builder
   produced is well-formed by construction. *)

module Schedule = struct
  type t = {
    mode : mode;
    jobs : int;  (* worker domains for independent per-instruction loops *)
  }
end

module Budget = struct
  type t = {
    conflict_budget : int;  (* total SAT conflicts before declaring timeout *)
    max_iterations : int;  (* CEGIS rounds per loop *)
    deadline_seconds : float option;  (* wall-clock timeout *)
  }
end

module Recovery = struct
  type t = {
    retries : int;
        (* extra attempts per solver query when an attempt comes back
           Unknown (or its model fails validation); see Resilience *)
    escalation_factor : int;  (* geometric budget/time growth per attempt *)
    validate_models : bool;
        (* cross-check every Sat model by concrete evaluation of the
           asserted terms before trusting it *)
  }
end

type options = {
  schedule : Schedule.t;
  budget : Budget.t;
  recovery : Recovery.t;
  check_independence : bool;
      (* verify the instruction-independence preconditions (paper 3.3.1)
         before synthesizing; abstraction-function assume wires act as the
         permitted feedback cuts *)
  incremental : bool;
      (* reuse one solver session per CEGIS loop (SAT state, blasting
         cache, learned clauses survive across iterations) instead of a
         fresh solver per query *)
  cache : Owl_cache.t option;
      (* cross-run synthesis cache: consult before each per-instruction
         CEGIS loop, populate after *)
  strategy : Solver.Strategy.t;
      (* solver strategy (pass gates + restart/seed/phase diversification
         base) applied to every solver this run creates; excluded from
         problem fingerprints because it never changes which models
         exist, only how fast one is found *)
  race : Portfolio.options;
      (* portfolio racing / cube-and-conquer for the hard verify
         queries; Portfolio.default = sequential *)
}

let default_options =
  {
    schedule = { Schedule.mode = Per_instruction; jobs = 1 };
    budget =
      {
        Budget.conflict_budget = max_int;
        max_iterations = 256;
        deadline_seconds = None;
      };
    recovery =
      {
        Recovery.retries = Resilience.default.Resilience.retries;
        escalation_factor = Resilience.default.Resilience.escalation_factor;
        validate_models = Resilience.default.Resilience.validate_models;
      };
    check_independence = false;
    incremental = true;
    cache = None;
    strategy = Solver.Strategy.default;
    race = Portfolio.default;
  }

(* the configuration actually handed to the SAT core *)
let sat_config o = Solver.Strategy.sat_config o.strategy

let with_mode mode o = { o with schedule = { o.schedule with Schedule.mode } }

let with_jobs jobs o =
  if jobs < 1 then invalid_arg "Engine.with_jobs: jobs < 1";
  { o with schedule = { o.schedule with Schedule.jobs } }

let with_conflict_budget conflict_budget o =
  { o with budget = { o.budget with Budget.conflict_budget } }

let with_max_iterations max_iterations o =
  if max_iterations < 1 then
    invalid_arg "Engine.with_max_iterations: max_iterations < 1";
  { o with budget = { o.budget with Budget.max_iterations } }

let with_deadline deadline_seconds o =
  { o with budget = { o.budget with Budget.deadline_seconds } }

(* The recovery builders delegate validation to Resilience.make so the
   engine and the standalone Resilience API can never drift apart. *)
let check_recovery (r : Recovery.t) =
  ignore
    (Resilience.make ~retries:r.Recovery.retries
       ~escalation_factor:r.Recovery.escalation_factor
       ~validate_models:r.Recovery.validate_models ())

let with_retries retries o =
  let recovery = { o.recovery with Recovery.retries } in
  check_recovery recovery;
  { o with recovery }

let with_escalation_factor escalation_factor o =
  let recovery = { o.recovery with Recovery.escalation_factor } in
  check_recovery recovery;
  { o with recovery }

let with_validate_models validate_models o =
  { o with recovery = { o.recovery with Recovery.validate_models } }

let with_check_independence check_independence o = { o with check_independence }
let with_incremental incremental o = { o with incremental }
let with_cache cache o = { o with cache }

let with_strategy strategy o = { o with strategy }

(* deprecated shims: the raw Sat.config plumbing predates Strategy — the
   CLI's --no-sat-* flags and the wire "sat" object still arrive here *)
let with_sat_config sat o =
  if sat.Sat.inprocess_interval < 1 then
    invalid_arg "Engine.with_sat_config: inprocess_interval < 1";
  { o with strategy = Solver.Strategy.of_config sat }

let with_sat_profile profile o =
  { o with strategy = Solver.Strategy.of_profile profile }

let with_race race o = { o with race }
let with_portfolio n o = { o with race = Portfolio.with_racers n o.race }

let with_cube_vars k o =
  { o with race = Portfolio.with_cube_vars k o.race }

let policy_of_options (o : options) =
  Resilience.make ~retries:o.recovery.Recovery.retries
    ~escalation_factor:o.recovery.Recovery.escalation_factor
    ~validate_models:o.recovery.Recovery.validate_models ()

type stats = {
  mutable iterations : int;
  mutable queries : int;
  mutable conflicts : int;
  mutable blasted_vars : int;
  mutable blasted_clauses : int;
  mutable trivial_unsats : int;
  mutable retried_queries : int;
  mutable degraded_queries : int;
  mutable validation_failures : int;
  mutable task_retries : int;
  mutable sat_restarts : int;
  mutable sat_learnt_kept : int;
  mutable sat_learnt_deleted : int;
  mutable sat_subsumed : int;
  mutable sat_strengthened : int;
  mutable sat_vivified : int;
  mutable sat_eliminated : int;
  mutable sat_rephases : int;
  mutable races : int;
  mutable race_unsat : int;
  mutable race_shared_out : int;
  mutable race_shared_in : int;
  mutable cubes : int;
  mutable cubes_unsat : int;
  mutable wall_seconds : float;
}

type solved = {
  completed : Oyster.Ast.design;
  bindings : (string * Oyster.Ast.expr) list;
  per_instr : (string * (string * Bitvec.t) list) list;
  shared : (string * Bitvec.t) list;
  pre_exprs : (string * Oyster.Ast.expr) list;
      (* each instruction's precondition over the datapath namespace *)
  stats : stats;
}

type outcome =
  | Solved of solved
  | Timeout of stats
  | Unrealizable of { instr : string option; stats : stats }
  | Union_failed of { diagnostic : string; stats : stats }
  | Not_independent of {
      overlapping : (string * string) list;
      feedback : (string * string * string) list;
      stats : stats;
    }

exception Engine_error = Synth_error.Engine_error

let fail fmt = Synth_error.fail fmt

type problem = {
  design : Oyster.Ast.design;
  spec : Ila.Spec.t;
  af : Ila.Absfun.t;
}

(* A deterministic symbolic-evaluation namespace per problem.  A fresh
   session counter would make a second [synthesize] call in the same
   process allocate differently-named variables, perturbing solver search
   and hence which of several correct models it returns; with the solver
   re-entrant and terms hash-consed globally, reusing the same names (and
   thus the exact same term nodes) across calls is safe and makes repeated
   runs — serial or parallel — bit-for-bit reproducible. *)
let problem_prefix (problem : problem) =
  "p!" ^ problem.design.Oyster.Ast.name ^ "!"

(* {1 Internal bookkeeping} *)

(* One [run] per worker: [stats] is that worker's private tally (the
   scheduler sums the tallies afterwards), while [consumed] is shared by
   every worker of a synthesis call so the conflict budget bounds the whole
   call, not each loop separately. *)
type run = {
  opts : options;
  stats : stats;
  consumed : int Atomic.t;  (* conflicts consumed across all workers *)
  started : float;
  hole_marker : string;  (* prefix identifying hole variables *)
  policy : Resilience.policy;  (* derived once from [opts] *)
  tasks_left : int Atomic.t;
      (* per-instruction tasks not yet completed, shared by all workers:
         the denominator of the resilience ladder's deadline slices *)
  cancel : unit -> bool;
      (* cooperative cancellation token, polled wherever the deadline is
         checked; a closure rather than an options field so the options
         record stays structurally comparable and wire-serializable *)
}

exception Stop of outcome
exception Cancelled

let now () = Unix.gettimeofday ()

let fresh_stats () =
  {
    iterations = 0;
    queries = 0;
    conflicts = 0;
    blasted_vars = 0;
    blasted_clauses = 0;
    trivial_unsats = 0;
    retried_queries = 0;
    degraded_queries = 0;
    validation_failures = 0;
    task_retries = 0;
    sat_restarts = 0;
    sat_learnt_kept = 0;
    sat_learnt_deleted = 0;
    sat_subsumed = 0;
    sat_strengthened = 0;
    sat_vivified = 0;
    sat_eliminated = 0;
    sat_rephases = 0;
    races = 0;
    race_unsat = 0;
    race_shared_out = 0;
    race_shared_in = 0;
    cubes = 0;
    cubes_unsat = 0;
    wall_seconds = 0.0;
  }

let merge_stats into from =
  into.iterations <- into.iterations + from.iterations;
  into.queries <- into.queries + from.queries;
  into.conflicts <- into.conflicts + from.conflicts;
  into.blasted_vars <- into.blasted_vars + from.blasted_vars;
  into.blasted_clauses <- into.blasted_clauses + from.blasted_clauses;
  into.trivial_unsats <- into.trivial_unsats + from.trivial_unsats;
  into.retried_queries <- into.retried_queries + from.retried_queries;
  into.degraded_queries <- into.degraded_queries + from.degraded_queries;
  into.validation_failures <-
    into.validation_failures + from.validation_failures;
  into.task_retries <- into.task_retries + from.task_retries;
  into.sat_restarts <- into.sat_restarts + from.sat_restarts;
  into.sat_learnt_kept <- into.sat_learnt_kept + from.sat_learnt_kept;
  into.sat_learnt_deleted <- into.sat_learnt_deleted + from.sat_learnt_deleted;
  into.sat_subsumed <- into.sat_subsumed + from.sat_subsumed;
  into.sat_strengthened <- into.sat_strengthened + from.sat_strengthened;
  into.sat_vivified <- into.sat_vivified + from.sat_vivified;
  into.sat_eliminated <- into.sat_eliminated + from.sat_eliminated;
  into.sat_rephases <- into.sat_rephases + from.sat_rephases;
  into.races <- into.races + from.races;
  into.race_unsat <- into.race_unsat + from.race_unsat;
  into.race_shared_out <- into.race_shared_out + from.race_shared_out;
  into.race_shared_in <- into.race_shared_in + from.race_shared_in;
  into.cubes <- into.cubes + from.cubes;
  into.cubes_unsat <- into.cubes_unsat + from.cubes_unsat

(* Rebuild an outcome around the scheduler's merged stats (worker Stop
   payloads carry only that worker's tally). *)
let with_stats stats = function
  | Solved s -> Solved { s with stats }
  | Timeout _ -> Timeout stats
  | Unrealizable { instr; _ } -> Unrealizable { instr; stats }
  | Union_failed { diagnostic; _ } -> Union_failed { diagnostic; stats }
  | Not_independent { overlapping; feedback; _ } ->
      Not_independent { overlapping; feedback; stats }

let check_deadline run =
  if run.cancel () then raise Cancelled;
  run.stats.wall_seconds <- now () -. run.started;
  match run.opts.budget.Budget.deadline_seconds with
  | Some d when run.stats.wall_seconds > d -> raise (Stop (Timeout run.stats))
  | _ -> ()

(* Common bookkeeping for one solver query.  Session checks report
   per-check increments (see {!Solver.stats}), so summing them here gives
   the same totals as the one-shot path: [blasted_clauses] counts every
   problem clause encoded across the run — the headline metric the
   incremental mode is meant to shrink — and [consumed] deducts only the
   conflicts of this query from the shared budget pool. *)
let account run (st : Solver.stats) =
  run.stats.queries <- run.stats.queries + 1;
  run.stats.conflicts <- run.stats.conflicts + st.Solver.sat_conflicts;
  run.stats.blasted_vars <- run.stats.blasted_vars + st.Solver.sat_vars;
  run.stats.blasted_clauses <-
    run.stats.blasted_clauses + st.Solver.sat_clauses;
  run.stats.sat_restarts <- run.stats.sat_restarts + st.Solver.sat_restarts;
  run.stats.sat_learnt_kept <-
    run.stats.sat_learnt_kept + st.Solver.sat_learnt_kept;
  run.stats.sat_learnt_deleted <-
    run.stats.sat_learnt_deleted + st.Solver.sat_learnt_deleted;
  run.stats.sat_subsumed <- run.stats.sat_subsumed + st.Solver.sat_subsumed;
  run.stats.sat_strengthened <-
    run.stats.sat_strengthened + st.Solver.sat_strengthened;
  run.stats.sat_vivified <- run.stats.sat_vivified + st.Solver.sat_vivified;
  run.stats.sat_eliminated <-
    run.stats.sat_eliminated + st.Solver.sat_eliminated;
  run.stats.sat_rephases <- run.stats.sat_rephases + st.Solver.sat_rephases;
  if st.Solver.trivially_unsat then
    run.stats.trivial_unsats <- run.stats.trivial_unsats + 1;
  ignore (Atomic.fetch_and_add run.consumed st.Solver.sat_conflicts)

let budget_remaining run =
  check_deadline run;
  let remaining = run.opts.budget.Budget.conflict_budget - Atomic.get run.consumed in
  if remaining <= 0 then raise (Stop (Timeout run.stats));
  remaining

let query_deadline run =
  Option.map (fun d -> run.started +. d) run.opts.budget.Budget.deadline_seconds

(* {1 Model validation}

   The runtime guard against trusting a wrong [Sat] model (a latent
   session bug, or an injected corruption): evaluate the asserted terms
   concretely under the model and require every one to hold.  The
   evaluation environment mirrors the solver's own defaulting rules —
   variables the blaster simplified away take any value (zero), residual
   memory reads resolve through the model's read instances (Ackermann
   congruence makes that canonical), absent addresses default to zero
   exactly as [cex_env] exposes them — so a model the solver honestly
   produced always passes. *)

let model_env (model : Solver.model) =
  {
    Term.lookup_var =
      (fun n w ->
        match model.Solver.var_value n with
        | Some v -> Some v
        | None -> Some (Bitvec.zero w));
    Term.lookup_read =
      (fun m a ->
        match Solver.read_lookup model m a with
        | Some v -> Some v
        | None -> Some (Bitvec.zero m.Term.data_width));
  }

let model_satisfies model terms =
  let env = model_env model in
  List.for_all (fun t -> Bitvec.is_ones (Term.eval env t)) terms

(* {1 The resilient query ladder}

   One logical query runs as up to [retries + 1] attempts (see
   {!Resilience}): escalating conflict budgets, per-task deadline slices,
   and a final attempt that degrades from the incremental session to a
   fresh one-shot solver.  [check] performs the query in its primary mode;
   [fresh] re-states the same query against a fresh solver (the degraded
   mode); [validate] lazily names the terms any [Sat] model must satisfy
   concretely when model validation is on.

   An [Unknown] on a non-final attempt retries one rung up; on the final
   attempt it raises [Stop (Timeout _)] — the ladder is the only place
   that turns solver Unknowns into engine timeouts.  A validation failure
   retries like an Unknown, except that it always earns a fresh-solver
   rung (even with [retries = 0] the engine never emits bindings from an
   unvalidated model just because retrying is disabled), and a failure
   {e on} the fresh rung is a hard error: at that point the model came
   from a stateless solver, so something is wrong beyond a transient. *)
let resilient run ~check ~fresh ~validate =
  let p = run.policy in
  let total = run.opts.budget.Budget.conflict_budget in
  let attempts = Resilience.attempts p in
  let rec go attempt =
    let remaining = budget_remaining run in
    (* [attempt] exceeds [attempts] only on the bonus validation rung *)
    let rung = min attempt attempts in
    let use_fresh = attempt > 1 && attempt >= attempts in
    let final = attempt >= attempts in
    let budget = Resilience.attempt_budget p ~total ~remaining ~attempt:rung in
    let deadline =
      Resilience.slice_deadline p ~now:(now ()) ~hard:(query_deadline run)
        ~tasks_left:(Atomic.get run.tasks_left) ~attempt:rung
    in
    if use_fresh then begin
      run.stats.degraded_queries <- run.stats.degraded_queries + 1;
      if Obs.recording () then
        Obs.instant "resilience.degrade" ~args:[ ("attempt", Obs.Int attempt) ]
    end;
    let result =
      Obs.span "resilience.attempt"
        ~args:
          [
            ("attempt", Obs.Int attempt);
            ("budget", Obs.Int budget);
            ("fresh", Obs.Bool use_fresh);
          ]
        ~result:(fun r -> [ ("result", Obs.Str (Solver.outcome_name r)) ])
        (fun () ->
          if use_fresh then fresh ~budget ?deadline ()
          else check ~budget ?deadline ())
    in
    account run (Solver.stats_of result);
    match result with
    | Solver.Unknown _ ->
        if final then raise (Stop (Timeout run.stats))
        else begin
          run.stats.retried_queries <- run.stats.retried_queries + 1;
          if Obs.recording () then
            Obs.instant "resilience.retry"
              ~args:
                [ ("attempt", Obs.Int attempt); ("reason", Obs.Str "unknown") ];
          go (attempt + 1)
        end
    | Solver.Sat (m, _)
      when p.Resilience.validate_models
           && not (model_satisfies m (validate ())) ->
        run.stats.validation_failures <- run.stats.validation_failures + 1;
        if Obs.recording () then
          Obs.instant "resilience.validation_failure"
            ~args:
              [ ("attempt", Obs.Int attempt); ("fresh", Obs.Bool use_fresh) ];
        if use_fresh then
          fail
            "model validation failed on a fresh solver (persistent fault or \
             solver bug)"
        else begin
          run.stats.retried_queries <- run.stats.retried_queries + 1;
          if Obs.recording () then
            Obs.instant "resilience.retry"
              ~args:
                [
                  ("attempt", Obs.Int attempt);
                  ("reason", Obs.Str "validation_failure");
                ];
          go (attempt + 1)
        end
    | r -> r
  in
  go 1

let solver_query run assertions =
  let q ~budget ?deadline () =
    Solver.check ~config:(sat_config run.opts) ~budget ?deadline assertions
  in
  resilient run ~check:q ~fresh:q ~validate:(fun () -> assertions)

(* The incremental counterpart: the query runs inside a persistent session
   ([assertions] are asserted permanently — once, before the ladder, so
   retries re-search without re-asserting — and [assumptions] name
   retractable guards).  [shadow] must restate the whole logical query as
   plain terms: it is what the degraded fresh-solver rung solves and what
   model validation evaluates. *)
let session_query ?assumptions ~shadow run sess assertions =
  List.iter (Solver.Session.assert_always sess) assertions;
  resilient run
    ~check:(fun ~budget ?deadline () ->
      Solver.Session.check_with ?assumptions ~budget ?deadline sess [])
    ~fresh:(fun ~budget ?deadline () ->
      Solver.check ~config:(sat_config run.opts) ~budget ?deadline (shadow ()))
    ~validate:shadow

(* Race (or cube) one hard query on the pool, charging the winner's work
   to this run's budget and absorbing the tally delta into the run stats
   (delta-based so a caller-shared long-lived tally still accounts
   correctly).  Only the Unsat direction is consumed by callers:
   [derive_sat:false] skips the canonical Sat re-derivation because the
   engine falls through to its sequential path on Sat anyway, which is
   what keeps portfolio bindings bit-identical to sequential ones. *)
let race_check run tally terms =
  let before = Portfolio.read_tally tally in
  let outcome =
    Portfolio.check ~options:run.opts.race ~tally ~cancel:run.cancel
      ~budget:(budget_remaining run)
      ?deadline:(query_deadline run) ~derive_sat:false
      ~jobs:run.opts.schedule.Schedule.jobs ~strategy:run.opts.strategy terms
  in
  let after = Portfolio.read_tally tally in
  let d f = f after - f before in
  run.stats.races <- run.stats.races + d (fun s -> s.Portfolio.races);
  run.stats.race_unsat <- run.stats.race_unsat + d (fun s -> s.Portfolio.race_unsat);
  run.stats.race_shared_out <-
    run.stats.race_shared_out + d (fun s -> s.Portfolio.shared_out);
  run.stats.race_shared_in <-
    run.stats.race_shared_in + d (fun s -> s.Portfolio.shared_in);
  run.stats.cubes <- run.stats.cubes + d (fun s -> s.Portfolio.cubes);
  run.stats.cubes_unsat <-
    run.stats.cubes_unsat + d (fun s -> s.Portfolio.cubes_unsat);
  account run (Solver.stats_of outcome);
  outcome

let is_hole_var run name =
  (* hole variables are <prefix>hole!<name> plus the per-instruction suffix *)
  let m = run.hole_marker in
  let lm = String.length m in
  String.length name >= lm && String.sub name 0 lm = m

(* Substitution environments. *)

let candidate_env run (candidate : (string, Bitvec.t) Hashtbl.t) =
  {
    Term.lookup_var =
      (fun n _w -> if is_hole_var run n then Hashtbl.find_opt candidate n else None);
    Term.lookup_read = (fun _ _ -> None);
  }

let cex_env run (model : Solver.model) =
  {
    Term.lookup_var =
      (fun n w ->
        if is_hole_var run n then None
        else
          match model.Solver.var_value n with
          | Some v -> Some v
          | None -> Some (Bitvec.zero w));
    Term.lookup_read =
      (fun m a ->
        match
          List.find_opt
            (fun (name, addr, _) ->
              String.equal name m.Term.mem_name && Bitvec.equal addr a)
            model.Solver.read_values
        with
        | Some (_, _, v) -> Some v
        | None -> Some (Bitvec.zero m.Term.data_width));
  }

(* Ground the residual memory reads of a counterexample-substituted formula.

   [Term.substitute] resolves reads whose address is concrete, but a read
   whose address depends on a hole stays symbolic.  Left free, the synthesis
   phase could satisfy its constraints by inventing memory contents instead
   of fixing the holes (a classic CEGIS degeneracy).  We instead interpret
   every remaining read against the counterexample's memory: an ite chain
   over the model's read set, defaulting to zero — one concrete memory, the
   same one [cex_env] exposes for concrete addresses. *)
let ground_reads (model : Solver.model) (root : Term.t) : Term.t =
  let memo = Hashtbl.create 64 in
  let mem_fun (m : Term.mem) addr =
    let entries =
      List.filter
        (fun (name, _, _) -> String.equal name m.Term.mem_name)
        model.Solver.read_values
    in
    List.fold_left
      (fun acc (_, a, v) ->
        Term.ite (Term.eq addr (Term.const a)) (Term.const v) acc)
      (Term.zero m.Term.data_width)
      entries
  in
  let rec go (t : Term.t) =
    match Hashtbl.find_opt memo (Term.id t) with
    | Some r -> r
    | None ->
        let r =
          match t.Term.node with
          | Term.Const _ | Term.Var _ -> t
          | Term.Not x -> Term.bnot (go x)
          | Term.Binop (op, a, b) -> (
              let a = go a and b = go b in
              match op with
              | Term.And -> Term.band a b
              | Term.Or -> Term.bor a b
              | Term.Xor -> Term.bxor a b
              | Term.Add -> Term.add a b
              | Term.Sub -> Term.sub a b
              | Term.Mul -> Term.mul a b
              | Term.Udiv -> Term.udiv a b
              | Term.Urem -> Term.urem a b
              | Term.Sdiv -> Term.sdiv a b
              | Term.Srem -> Term.srem a b
              | Term.Clmul -> Term.clmul a b
              | Term.Clmulh -> Term.clmulh a b
              | Term.Shl -> Term.shl a b
              | Term.Lshr -> Term.lshr a b
              | Term.Ashr -> Term.ashr a b)
          | Term.Cmp (op, a, b) -> (
              let a = go a and b = go b in
              match op with
              | Term.Eq -> Term.eq a b
              | Term.Ult -> Term.ult a b
              | Term.Ule -> Term.ule a b
              | Term.Slt -> Term.slt a b
              | Term.Sle -> Term.sle a b)
          | Term.Ite (c, a, b) -> Term.ite (go c) (go a) (go b)
          | Term.Extract (h, l, x) -> Term.extract ~high:h ~low:l (go x)
          | Term.Concat (a, b) -> Term.concat (go a) (go b)
          | Term.Table (tb, i) -> Term.table_read tb (go i)
          | Term.Read (m, a) -> mem_fun m (go a)
        in
        Hashtbl.add memo (Term.id t) r;
        r
  in
  go root

(* {1 Verification of completed designs}

   With no holes in play this is plain bounded refinement checking: for
   every instruction, Pre /\ assumes /\ not Post must be unsatisfiable over
   the completed design's symbolic trace.  This is how a hand-written (or
   previously synthesized) control implementation is formally checked
   against the specification. *)

type verdict = Verified | Violated of Solver.model | Inconclusive

let verify ?(budget = max_int) ?deadline ?(jobs = 1) ?(incremental = true)
    ?(retries = default_options.recovery.Recovery.retries)
    ?(escalation_factor = default_options.recovery.Recovery.escalation_factor)
    ?(validate_models = default_options.recovery.Recovery.validate_models)
    ?sat ?strategy ?(race = Portfolio.default) ?race_tally
    ?(cancel = fun () -> false) (problem : problem) :
    (string * verdict) list =
  if Oyster.Ast.holes problem.design <> [] then
    fail "Engine.verify: design still has holes (synthesize first)";
  (* [strategy] wins over the deprecated raw [sat] config *)
  let strategy =
    match (strategy, sat) with
    | Some st, _ -> st
    | None, Some c -> Solver.Strategy.of_config c
    | None, None -> default_options.strategy
  in
  let sat = Solver.Strategy.sat_config strategy in
  (* When racing, per-query parallelism replaces per-instruction
     parallelism: the whole pool serves each query's racers (or cubes)
     and the instructions run in sequence — enabling the portfolio is the
     caller saying single queries, not task count, are the bottleneck. *)
  let race_jobs = jobs in
  let jobs = if Portfolio.enabled race then 1 else jobs in
  let policy = Resilience.make ~retries ~escalation_factor ~validate_models () in
  let trace =
    Oyster.Symbolic.eval ~prefix:(problem_prefix problem) problem.design
      ~cycles:problem.af.Ila.Absfun.cycles
  in
  let conds = Ila.Conditions.compile problem.spec problem.af trace in
  let tasks_left = Atomic.make (List.length conds) in
  (* The same resilience ladder as the synthesis core, per instruction:
     [budget] bounds the instruction's whole ladder (escalating rungs plus
     a fresh-solver final rung), deadline slices divide the remaining wall
     time over the instructions still outstanding, and with
     [validate_models] every Sat model is concretely evaluated against
     [shadow] before being trusted.  Exhausting the ladder is
     Inconclusive, like any other Unknown. *)
  let resilient_check ~check ~shadow =
    let attempts = Resilience.attempts policy in
    let consumed = ref 0 in
    let rec go attempt =
      if cancel () then raise Cancelled;
      let remaining = budget - !consumed in
      if remaining <= 0 then Solver.Unknown Solver.empty_stats
      else begin
        let rung = min attempt attempts in
        let use_fresh = attempt > 1 && attempt >= attempts in
        let b =
          Resilience.attempt_budget policy ~total:budget ~remaining
            ~attempt:rung
        in
        let dl =
          Resilience.slice_deadline policy ~now:(now ()) ~hard:deadline
            ~tasks_left:(Atomic.get tasks_left) ~attempt:rung
        in
        let result =
          Obs.span "resilience.attempt"
            ~args:
              [
                ("attempt", Obs.Int attempt);
                ("budget", Obs.Int b);
                ("fresh", Obs.Bool use_fresh);
              ]
            ~result:(fun r -> [ ("result", Obs.Str (Solver.outcome_name r)) ])
            (fun () ->
              if use_fresh then
                Solver.check ~config:sat ~budget:b ?deadline:dl (shadow ())
              else check ~budget:b ?deadline:dl ())
        in
        consumed := !consumed + (Solver.stats_of result).Solver.sat_conflicts;
        match result with
        | Solver.Unknown _ when attempt < attempts ->
            if Obs.recording () then
              Obs.instant "resilience.retry"
                ~args:
                  [
                    ("attempt", Obs.Int attempt); ("reason", Obs.Str "unknown");
                  ];
            go (attempt + 1)
        | Solver.Sat (m, _)
          when validate_models && not (model_satisfies m (shadow ())) ->
            if use_fresh then
              fail
                "Engine.verify: model validation failed on a fresh solver \
                 (persistent fault or solver bug)"
            else go (attempt + 1)
        | r -> r
      end
    in
    go 1
  in
  (* Each instruction's refinement check is an independent solver query, so
     they fan out over the worker pool; results keep instruction order.
     Incrementally, every worker keeps one session for all the instructions
     it picks up: the refined violations share the datapath trace, so the
     blasting cache re-encodes only each instruction's decode-specific
     cones.  Which instructions share a worker's session depends on the
     dynamic schedule, but with an unexhausted budget that only perturbs
     search order, never the Verified/Violated verdict.  Tasks crashed by
     an injected fault are retried on a fresh arena like the synthesis
     pool's. *)
  try
    Pool.map_arena ~jobs
      ~make:(fun () -> Solver.Arena.create ~config:sat ())
      ~retries
      (fun arena (c : Ila.Conditions.conditions) ->
      Obs.span "verify.instr"
        ~args:[ ("instr", Obs.Str c.Ila.Conditions.instr_name) ]
        ~result:(fun (_, v) ->
          [
            ( "verdict",
              Obs.Str
                (match v with
                | Verified -> "verified"
                | Violated _ -> "violated"
                | Inconclusive -> "inconclusive") );
          ])
      @@ fun () ->
      let violation =
        Term.band c.Ila.Conditions.pre
          (Term.band c.Ila.Conditions.assumes (Term.bnot c.Ila.Conditions.post))
      in
      (* Field refinement (see Refine): substitute the instruction-word
         fields the precondition pins into the fetched word, so the decode
         folds and the operation-selection muxes collapse before
         bit-blasting.  Verifying hand-written control over an ALU tree
         with 64-bit multiplier/divider cones is intractable without it. *)
      let pins = Refine.collect c.Ila.Conditions.pre in
      let refined = Refine.apply pins violation in
      (* Portfolio hook: Unsat from the race settles the instruction as
         Verified without climbing the resilience ladder; Sat/Unknown
         falls through to the sequential path, which re-derives any
         counterexample model deterministically. *)
      let raced_outcome =
        if Portfolio.enabled race then
          match
            Portfolio.check ~options:race ?tally:race_tally ~cancel ~budget
              ?deadline ~derive_sat:false ~jobs:race_jobs ~strategy
              [ refined ]
          with
          | Solver.Unsat _ as o -> Some o
          | Solver.Sat _ | Solver.Unknown _ -> None
        else None
      in
      let refined_outcome =
        match raced_outcome with
        | Some o -> o
        | None ->
        if incremental then begin
          let s = Solver.Arena.shared arena in
          let g = Solver.Session.assert_retractable s refined in
          let r =
            resilient_check
              ~check:(fun ~budget ?deadline () ->
                Solver.Session.check_with ~assumptions:[ g ] ~budget ?deadline
                  s [])
              ~shadow:(fun () -> [ refined ])
          in
          Solver.Session.retract s g;
          r
        end
        else
          resilient_check
            ~check:(fun ~budget ?deadline () ->
              Solver.check ~config:sat ~budget ?deadline [ refined ])
            ~shadow:(fun () -> [ refined ])
      in
      let verdict =
        match refined_outcome with
        | Solver.Unsat _ -> Verified
        | Solver.Unknown _ -> Inconclusive
        | Solver.Sat (m, _) -> (
            (* The refined model lacks the pinned bits (they folded away);
               re-check the original formula to report a faithful
               counterexample.  A fresh check keeps the reported model
               deterministic even under parallel incremental schedules;
               violations are found quickly in practice, so the extra
               query is cheap. *)
            match Solver.check ~config:sat ~budget ?deadline [ violation ] with
            | Solver.Sat (m', _) -> Violated m'
            | Solver.Unsat _ | Solver.Unknown _ -> Violated m)
      in
      ignore (Atomic.fetch_and_add tasks_left (-1));
      (c.Ila.Conditions.instr_name, verdict))
      conds
  with Fault.Injected_crash i ->
    fail "Engine.verify: worker task attempt %d crashed and exhausted %d retries"
      i retries

(* The monolithic ∀-verify query in closed form: the disjunction, over
   every instruction of the spec, of "this instruction's precondition and
   assumptions hold yet its postcondition fails" on the completed
   design's symbolic trace.  Unsat iff the design is correct.  This is
   the query the monolithic schedule mode poses each CEGIS iteration —
   the one the paper's headline table shows timing out — exported so
   benches and tools can attack it directly (portfolio racing,
   cube-and-conquer) without driving the full synthesis loop.

   [refine] folds each disjunct's pinned instruction-word fields first
   (see Refine), collapsing decode per disjunct the way [verify] does
   per query.  Unrefined, the full decode tree survives into the blast:
   that is the hard form, and also the one where cube-and-conquer's
   occurrence-ranked splitting has decode bits to split on. *)
let monolithic_violation ?(refine = true) (problem : problem) : Term.t =
  if Oyster.Ast.holes problem.design <> [] then
    fail "Engine.monolithic_violation: design still has holes (synthesize first)";
  let trace =
    Oyster.Symbolic.eval ~prefix:(problem_prefix problem) problem.design
      ~cycles:problem.af.Ila.Absfun.cycles
  in
  let conds = Ila.Conditions.compile problem.spec problem.af trace in
  if conds = [] then fail "Engine.monolithic_violation: specification has no instructions";
  Term.disj
    (List.map
       (fun (c : Ila.Conditions.conditions) ->
         let violation =
           Term.band c.Ila.Conditions.pre
             (Term.band c.Ila.Conditions.assumes
                (Term.bnot c.Ila.Conditions.post))
         in
         if refine then
           Refine.apply (Refine.collect c.Ila.Conditions.pre) violation
         else violation)
       conds)

(* {1 The synthesis core} *)

let synthesize ?(options = default_options) ?(cancel = fun () -> false)
    ?race_tally (problem : problem) : outcome =
  if options.schedule.Schedule.jobs < 1 then fail "Engine.synthesize: options.schedule.Schedule.jobs < 1";
  let race_tally =
    match race_tally with Some t -> t | None -> Portfolio.create_tally ()
  in
  let stats = fresh_stats () in
  let started = now () in
  let trace =
    Oyster.Symbolic.eval ~prefix:(problem_prefix problem) problem.design
      ~cycles:problem.af.Ila.Absfun.cycles
  in
  let run =
    {
      opts = options;
      stats;
      consumed = Atomic.make 0;
      started;
      hole_marker = trace.Oyster.Symbolic.prefix ^ "hole!";
      policy = policy_of_options options;
      tasks_left = Atomic.make 1;
      cancel;
    }
  in
  try
    let conds = Ila.Conditions.compile problem.spec problem.af trace in
    if conds = [] then fail "specification has no instructions";
    let holes = Oyster.Ast.holes problem.design in
    if holes = [] then fail "sketch has no holes";
    if options.check_independence then begin
      let allowed_cuts = List.map fst problem.af.Ila.Absfun.assumes in
      let excl = Independence.check_mutual_exclusion conds in
      let fb = Independence.check_no_feedback ~allowed_cuts problem.design in
      if
        excl.Independence.overlapping <> []
        || fb.Independence.feedback_paths <> []
      then
        raise
          (Stop
             (Not_independent
                {
                  overlapping = excl.Independence.overlapping;
                  feedback = fb.Independence.feedback_paths;
                  stats = run.stats;
                }))
    end;
    let shared_holes, per_holes =
      List.partition
        (fun (h : Oyster.Ast.hole_decl) -> h.Oyster.Ast.kind = Oyster.Ast.Shared)
        holes
    in
    let hole_var (h : Oyster.Ast.hole_decl) =
      match List.assoc_opt h.Oyster.Ast.hole_name trace.Oyster.Symbolic.hole_terms with
      | Some t -> (
          match t.Term.node with
          | Term.Var n -> (n, Term.width t)
          | _ -> fail "hole %s was not evaluated as a variable" h.Oyster.Ast.hole_name)
      | None ->
          (* hole unused by any statement: synthesize an arbitrary constant *)
          (run.hole_marker ^ h.Oyster.Ast.hole_name, h.Oyster.Ast.hole_width)
    in
    let per_hole_vars = List.map hole_var per_holes in
    let shared_hole_vars = List.map hole_var shared_holes in
    (* Per-instruction renaming of the Per_instruction hole constants. *)
    let renamed_var (base, _w) iname = base ^ "!!" ^ iname in
    let rename_for iname t =
      Term.rename
        (fun n ->
          if List.exists (fun (base, _) -> String.equal base n) per_hole_vars then
            Some (n ^ "!!" ^ iname)
          else None)
        t
    in
    let formulas =
      List.map
        (fun (c : Ila.Conditions.conditions) ->
          let pre = Term.band c.Ila.Conditions.pre c.Ila.Conditions.assumes in
          let correct =
            Term.implies pre c.Ila.Conditions.post |> rename_for c.Ila.Conditions.instr_name
          in
          let violation =
            Term.band pre (Term.bnot c.Ila.Conditions.post)
            |> rename_for c.Ila.Conditions.instr_name
          in
          (c, correct, violation))
        conds
    in
    let instr_names =
      List.map (fun (c : Ila.Conditions.conditions) -> c.Ila.Conditions.instr_name) conds
    in
    let hole_vars_of_instr iname =
      List.map (fun hv -> (renamed_var hv iname, snd hv)) per_hole_vars
      @ shared_hole_vars
    in
    let candidate : (string, Bitvec.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun iname ->
        List.iter
          (fun (n, w) -> Hashtbl.replace candidate n (Bitvec.zero w))
          (hole_vars_of_instr iname))
      instr_names;
    (* Update hole values in [tbl] from a synthesis model.  Variables the
       model does not constrain (simplified away, or belonging to another
       instruction's already-solved loop) keep their current value. *)
    let refresh_table tbl model =
      Hashtbl.iter
        (fun n _old ->
          match model.Solver.var_value n with
          | Some v -> Hashtbl.replace tbl n v
          | None -> ())
        (Hashtbl.copy tbl)
    in
    (* Verify one candidate against a (possibly shared) verification
       session: assert the candidate-substituted violation behind a fresh
       activation literal, check with that guard assumed, then retract it.
       The violation's hole-free cones are identical from iteration to
       iteration, so the session's blasting cache re-encodes only the
       folded candidate cones; the retracted guard permanently disables the
       stale candidate's clauses while everything learned stays. *)
    let session_verify trun sess violation candidate =
      let v = Term.substitute (candidate_env trun candidate) violation in
      let g = Solver.Session.assert_retractable sess v in
      let result =
        session_query ~assumptions:[ g ] ~shadow:(fun () -> [ v ]) trun sess []
      in
      Solver.Session.retract sess g;
      match result with
      | Solver.Sat (m, _) -> Some m
      | Solver.Unsat _ -> None
      | Solver.Unknown _ -> fail "internal: resilient query returned Unknown"
    in
    let fresh_verify trun violation candidate =
      let v = Term.substitute (candidate_env trun candidate) violation in
      match solver_query trun [ v ] with
      | Solver.Sat (m, _) -> Some m
      | Solver.Unsat _ -> None
      | Solver.Unknown _ -> fail "internal: resilient query returned Unknown"
    in
    let independent = options.schedule.Schedule.mode = Per_instruction && shared_holes = [] in
    (if independent then begin
       (* The paper's per-instruction strategy: separate small CEGIS loops,
          independent by construction (paper 3.3.1), fanned out across the
          worker pool.  Each task owns its stats and its slice of the
          candidate (the per-instruction renamed hole copies are disjoint),
          so workers share nothing but the term table, the solver (both
          re-entrant) and the conflict-budget counter.  The merge is
          deterministic: results land in instruction order, and on failure
          the lowest-indexed failing instruction is reported — the same one
          the serial schedule blames. *)
       let failed = Atomic.make false in
       let task arena ((c : Ila.Conditions.conditions), correct, violation) =
         Obs.span "cegis.instr"
           ~args:[ ("instr", Obs.Str c.Ila.Conditions.instr_name) ]
           ~result:(fun (r, (ts : stats)) ->
             [
               ( "status",
                 Obs.Str
                   (match r with
                   | `Solved _ -> "solved"
                   | `Skipped -> "skipped"
                   | `Stopped _ -> "stopped") );
               ("iterations", Obs.Int ts.iterations);
               ("queries", Obs.Int ts.queries);
             ])
         @@ fun () ->
         let trun = { run with stats = fresh_stats () } in
         (* serial fallback keeps the historical early exit; parallel
            workers run to completion so blame stays deterministic *)
         if trun.opts.schedule.Schedule.jobs = 1 && Atomic.get failed then (`Skipped, trun.stats)
         else begin
           let iname = c.Ila.Conditions.instr_name in
           let expected_holes = hole_vars_of_instr iname in
           let local : (string, Bitvec.t) Hashtbl.t = Hashtbl.create 16 in
           List.iter
             (fun (n, w) -> Hashtbl.replace local n (Bitvec.zero w))
             expected_holes;
           (* Content-addressed identity of this per-instruction problem.
              [fp] keys the result tier: the canonical serialization of the
              correctness and violation formulas pins the whole problem
              (sketch structure, pre/post, abstraction wires, hole copies),
              and the solver-relevant [incremental] flag rides along.
              Budgets, deadlines, retries, and [jobs] deliberately do not:
              they change how hard the engine tries, never which bindings
              are correct — so jobs=1 and jobs=4 share entries.  [warm_key]
              is coarser: design/instruction/hole signature only, so a
              near-miss problem (same instruction, edited sketch) still
              finds its accumulated counterexamples. *)
           let fp, warm_key =
             match options.cache with
             | None -> ("", "")
             | Some _ ->
                 let holes_line =
                   String.concat " "
                     (List.map
                        (fun (n, w) -> Printf.sprintf "%s:%d" n w)
                        expected_holes)
                 in
                 ( Owl_cache.fingerprint
                     (Printf.sprintf "owl-problem 1\nincremental %b\nholes %s\n%s"
                        options.incremental holes_line
                        (Term.serialize [ correct; violation ])),
                   Owl_cache.fingerprint
                     (Printf.sprintf
                        "owl-warm 1\ndesign %s\ninstr %s\nincremental %b\n\
                         holes %s\n"
                        problem.design.Oyster.Ast.name iname
                        options.incremental holes_line) )
           in
           (* Result tier: a structurally sound entry is only trusted after
              re-proving its bindings by concrete evaluation of the stored
              ground constraints (the validate_models machinery), so a
              stale or corrupted entry degrades to a miss, never to wrong
              control logic. *)
           let cached_result =
             match options.cache with
             | None -> None
             | Some cch ->
                 Obs.span "cache.lookup"
                   ~args:[ ("instr", Obs.Str iname) ]
                   ~result:(fun r -> [ ("hit", Obs.Bool (r <> None)) ])
                   (fun () ->
                     Owl_cache.lookup_result cch ~fp
                       ~validate:(fun bindings constraints ->
                         List.length bindings = List.length expected_holes
                         && List.for_all2
                              (fun (n, w) (bn, bv) ->
                                String.equal n bn && Bitvec.width bv = w)
                              expected_holes bindings
                         &&
                         let env =
                           {
                             Term.lookup_var =
                               (fun n w ->
                                 match List.assoc_opt n bindings with
                                 | Some v when Bitvec.width v = w -> Some v
                                 | _ -> Some (Bitvec.zero w));
                             Term.lookup_read = (fun _ _ -> None);
                           }
                         in
                         List.for_all
                           (fun t -> Bitvec.is_ones (Term.eval env t))
                           constraints))
           in
           match cached_result with
           | Some bindings ->
               List.iter (fun (n, v) -> Hashtbl.replace local n v) bindings;
               ignore (Atomic.fetch_and_add run.tasks_left (-1));
               (`Solved local, trun.stats)
           | None ->
           (* Incremental mode keeps two sessions for the whole loop — one
              for verify queries (candidates come and go via activation
              literals), one for synth queries (counterexample constraints
              only accumulate, so they are asserted permanently).  The
              sessions are per task, not per worker, so the query sequence
              each one sees is independent of the dynamic schedule and the
              bindings are identical for any [jobs].  The synth session
              sits behind a ref: discarding a stale warm-start replay swaps
              in a clean one. *)
           let sessions =
             if options.incremental then
               Some (Solver.Arena.session arena, ref (Solver.Arena.session arena))
             else None
           in
           (* every accumulated ground constraint, newest first — the fresh
              mode's whole query, and in incremental mode the shadow of the
              synth session's asserted set (what the resilience ladder's
              degraded fresh-solver rung re-solves, and what model
              validation evaluates) *)
           let local_constraints = ref [] in
           let verify_candidate () =
             Obs.span "cegis.verify"
               ~args:[ ("instr", Obs.Str c.Ila.Conditions.instr_name) ]
               ~result:(fun r -> [ ("counterexample", Obs.Bool (r <> None)) ])
               (fun () ->
                 match sessions with
                 | Some (vsess, _) -> session_verify trun vsess violation local
                 | None -> fresh_verify trun violation local)
           in
           let synth_with g =
             local_constraints := g :: !local_constraints;
             Obs.span "cegis.synth"
               ~args:
                 [
                   ("instr", Obs.Str c.Ila.Conditions.instr_name);
                   ("constraints", Obs.Int (List.length !local_constraints));
                 ]
               ~result:(fun r -> [ ("result", Obs.Str (Solver.outcome_name r)) ])
               (fun () ->
                 match sessions with
                 | Some (_, ssess) ->
                     session_query ~shadow:(fun () -> !local_constraints) trun
                       !ssess [ g ]
                 | None -> solver_query trun !local_constraints)
           in
           (* Warm-start state worth persisting: the accumulated ground
              counterexample constraints (oldest first, the order a replay
              must re-assert them in) plus the synth session's learned
              clauses.  Stored on success and on timeout — a timed-out
              loop's partial work is exactly what a rerun with a bigger
              budget wants back. *)
           let store_warm_state () =
             match options.cache with
             | None -> ()
             | Some cch ->
                 let cex = List.rev !local_constraints in
                 let clauses =
                   match sessions with
                   | Some (_, ssess) -> Solver.Session.export_learnt !ssess
                   | None -> []
                 in
                 if cex <> [] || clauses <> [] then
                   Owl_cache.store_warm cch ~key:warm_key
                     { Owl_cache.exact_fp = fp; clauses; cex }
           in
           (* Replay persisted warm-start state before the first CEGIS
              round.  Counterexample constraints survive sketch edits (they
              only narrow the hole space, and the loop re-verifies whatever
              they produce), but two soundness guards apply:

              - only constraints over exactly this problem's hole variables
                are usable, and learned clauses are imported only on an
                exact fingerprint match with a full replay — identical
                assertion sequence means identical variable numbering,
                which is what makes foreign clauses sound;
              - if the replayed constraints are already unsatisfiable, the
                staleness is over-constraining an edited sketch: the replay
                is discarded wholesale (clean session, empty constraint
                set) so a stale cache can never turn into a spurious
                Unrealizable. *)
           let replay_warm () =
             match options.cache with
             | None -> ()
             | Some cch -> (
                 match Owl_cache.lookup_warm cch ~key:warm_key with
                 | None -> ()
                 | Some w ->
                     let usable =
                       List.filter
                         (fun t ->
                           List.for_all
                             (fun (n, tw) ->
                               match List.assoc_opt n expected_holes with
                               | Some w' -> w' = tw
                               | None -> false)
                             (Term.vars t))
                         w.Owl_cache.cex
                     in
                     if usable <> [] then begin
                       let full =
                         List.length usable = List.length w.Owl_cache.cex
                       in
                       let imported =
                         match sessions with
                         | Some (_, ssess) ->
                             List.iter
                               (Solver.Session.assert_always !ssess)
                               usable;
                             if full && String.equal w.Owl_cache.exact_fp fp
                             then
                               Solver.Session.import_learnt !ssess
                                 w.Owl_cache.clauses
                             else 0
                         | None -> 0
                       in
                       local_constraints := List.rev usable;
                       if Obs.recording () then
                         Obs.instant "cache.warm_replay"
                           ~args:
                             [
                               ("instr", Obs.Str iname);
                               ("cex", Obs.Int (List.length usable));
                               ("clauses", Obs.Int imported);
                             ];
                       let result =
                         match sessions with
                         | Some (_, ssess) ->
                             session_query
                               ~shadow:(fun () -> !local_constraints)
                               trun !ssess []
                         | None -> solver_query trun !local_constraints
                       in
                       match result with
                       | Solver.Sat (m, _) -> refresh_table local m
                       | Solver.Unsat _ ->
                           if Obs.recording () then
                             Obs.instant "cache.warm_discard"
                               ~args:[ ("instr", Obs.Str iname) ];
                           local_constraints := [];
                           (match sessions with
                           | Some (_, ssess) ->
                               ssess := Solver.Arena.session arena
                           | None -> ())
                       | Solver.Unknown _ ->
                           fail "internal: resilient query returned Unknown"
                     end)
           in
           try
             replay_warm ();
             (* the iteration span closes before the recursive call, so
                nesting depth stays constant however many rounds run *)
             let rec loop iter =
               if iter > options.budget.Budget.max_iterations then
                 raise (Stop (Timeout trun.stats));
               trun.stats.iterations <- trun.stats.iterations + 1;
               let continue =
                 Obs.span "cegis.iteration"
                   ~args:
                     [
                       ("instr", Obs.Str c.Ila.Conditions.instr_name);
                       ("iter", Obs.Int iter);
                     ]
                   ~result:(fun k -> [ ("counterexample", Obs.Bool k) ])
                 @@ fun () ->
                 match verify_candidate () with
                 | None -> false
                 | Some model ->
                     if Obs.recording () then
                       Obs.instant "cegis.counterexample"
                         ~args:
                           [
                             ( "instr",
                               Obs.Str c.Ila.Conditions.instr_name );
                             ("iter", Obs.Int iter);
                           ];
                     let env = cex_env trun model in
                     let g = ground_reads model (Term.substitute env correct) in
                     (match synth_with g with
                     | Solver.Sat (m, _) -> refresh_table local m
                     | Solver.Unsat _ ->
                         raise
                           (Stop
                              (Unrealizable
                                 {
                                   instr = Some c.Ila.Conditions.instr_name;
                                   stats = trun.stats;
                                 }))
                     | Solver.Unknown _ ->
                         fail "internal: resilient query returned Unknown");
                     true
               in
               if continue then loop (iter + 1)
             in
             loop 1;
             (* populate both tiers: the bindings just proven (with the
                ground constraints as re-checkable evidence) and the
                warm-start state *)
             (match options.cache with
             | None -> ()
             | Some cch ->
                 let bindings =
                   List.map
                     (fun (n, w) ->
                       ( n,
                         match Hashtbl.find_opt local n with
                         | Some v -> v
                         | None -> Bitvec.zero w ))
                     expected_holes
                 in
                 Owl_cache.store_result cch ~fp ~bindings
                   ~constraints:(List.rev !local_constraints);
                 store_warm_state ());
             ignore (Atomic.fetch_and_add run.tasks_left (-1));
             (`Solved local, trun.stats)
           with Stop o ->
             (match o with Timeout _ -> store_warm_state () | _ -> ());
             Atomic.set failed true;
             ignore (Atomic.fetch_and_add run.tasks_left (-1));
             (`Stopped o, trun.stats)
         end
       in
       Atomic.set run.tasks_left (List.length formulas);
       let task_retried = Atomic.make 0 in
       let results =
         try
           Pool.map_arena ~jobs:options.schedule.Schedule.jobs
             ~make:(fun () -> Solver.Arena.create ~config:(sat_config options) ())
             ~retries:options.recovery.Recovery.retries ~retried:task_retried task formulas
         with Fault.Injected_crash i ->
           fail
             "worker task attempt %d crashed and exhausted %d retries" i
             options.recovery.Recovery.retries
       in
       run.stats.task_retries <-
         run.stats.task_retries + Atomic.get task_retried;
       (* deterministic merge, in instruction order *)
       List.iter (fun (_, ts) -> merge_stats run.stats ts) results;
       (match
          List.find_map
            (function `Stopped o, _ -> Some o | _ -> None)
            results
        with
       | Some o -> raise (Stop o)
       | None -> ());
       List.iter
         (function
           | `Solved local, _ -> Hashtbl.iter (Hashtbl.replace candidate) local
           | (`Skipped | `Stopped _), _ -> ())
         results
     end
     else begin
       (* joint synthesis; verification granularity depends on the mode.
          Shared holes couple the loops, so this path stays serial. *)
       let corrects = List.map (fun (_, f, _) -> f) formulas in
       let verify_targets =
         match options.schedule.Schedule.mode with
         | Monolithic -> [ Term.disj (List.map (fun (_, _, v) -> v) formulas) ]
         | Per_instruction -> List.map (fun (_, _, v) -> v) formulas
       in
       (* one verify session per target plus one synth session, all on the
          calling domain (this path is serial) *)
       let arena = Solver.Arena.create ~config:(sat_config options) () in
       let vsessions =
         List.map
           (fun v ->
             (v, if options.incremental then Some (Solver.Arena.session arena) else None))
           verify_targets
       in
       let synth_sess =
         if options.incremental then Some (Solver.Arena.session arena) else None
       in
       (* fresh mode re-sends the whole pool each synth query; incremental
          mode asserts each constraint once, so it only tracks the not yet
          asserted tail *)
       let constraints : Term.t list ref = ref [] in
       let pending : Term.t list ref = ref [] in
       let add_cex_for model =
         let env = cex_env run model in
         List.iter
           (fun f ->
             let g = ground_reads model (Term.substitute env f) in
             if not (Term.is_true g) then begin
               constraints := g :: !constraints;
               pending := g :: !pending
             end)
           corrects
       in
       let synth_step () =
         let result =
           Obs.span "cegis.synth"
             ~args:
               [
                 ("instr", Obs.Str "joint");
                 ("constraints", Obs.Int (List.length !constraints));
               ]
             ~result:(fun r -> [ ("result", Obs.Str (Solver.outcome_name r)) ])
             (fun () ->
               match synth_sess with
               | Some s ->
                   let fresh = List.rev !pending in
                   pending := [];
                   session_query ~shadow:(fun () -> !constraints) run s fresh
               | None -> solver_query run !constraints)
         in
         match result with
         | Solver.Sat (m, _) -> refresh_table candidate m
         | Solver.Unsat _ ->
             raise (Stop (Unrealizable { instr = None; stats = run.stats }))
         | Solver.Unknown _ ->
             fail "internal: resilient query returned Unknown"
       in
       let verify (v, sess) =
         Obs.span "cegis.verify"
           ~args:[ ("instr", Obs.Str "joint") ]
           ~result:(fun r -> [ ("counterexample", Obs.Bool (r <> None)) ])
           (fun () ->
             (* Portfolio hook: race the candidate-substituted violation
                across the pool first.  Unsat settles the query (this is
                the monolithic ∀-check that times out sequentially — the
                whole point of the race); Sat or Unknown falls through to
                the sequential session path, whose counterexample models —
                and hence the final bindings — are exactly the ones a
                sequential run derives. *)
             let raced_unsat =
               Portfolio.enabled options.race
               &&
               let vt = Term.substitute (candidate_env run candidate) v in
               match race_check run race_tally [ vt ] with
               | Solver.Unsat _ -> true
               | Solver.Sat _ | Solver.Unknown _ -> false
             in
             if raced_unsat then None
             else
               match sess with
               | Some s -> session_verify run s v candidate
               | None -> fresh_verify run v candidate)
       in
       let rec loop iter =
         if iter > options.budget.Budget.max_iterations then raise (Stop (Timeout run.stats));
         run.stats.iterations <- run.stats.iterations + 1;
         let continue =
           Obs.span "cegis.iteration"
             ~args:[ ("instr", Obs.Str "joint"); ("iter", Obs.Int iter) ]
             ~result:(fun k -> [ ("counterexample", Obs.Bool k) ])
           @@ fun () ->
           match List.filter_map verify vsessions with
           | [] -> false
           | models ->
               if Obs.recording () then
                 Obs.instant "cegis.counterexample"
                   ~args:
                     [
                       ("instr", Obs.Str "joint");
                       ("iter", Obs.Int iter);
                       ("models", Obs.Int (List.length models));
                     ];
               List.iter add_cex_for models;
               synth_step ();
               true
         in
         if continue then loop (iter + 1)
       in
       loop 1
     end);
    (* assemble results *)
    let per_instr =
      List.map
        (fun iname ->
          ( iname,
            List.map
              (fun ((h : Oyster.Ast.hole_decl), (base, w)) ->
                let v =
                  match Hashtbl.find_opt candidate (renamed_var (base, w) iname) with
                  | Some v -> v
                  | None -> Bitvec.zero w
                in
                (h.Oyster.Ast.hole_name, v))
              (List.combine per_holes per_hole_vars) ))
        instr_names
    in
    let shared =
      List.map
        (fun ((h : Oyster.Ast.hole_decl), (base, w)) ->
          ( h.Oyster.Ast.hole_name,
            match Hashtbl.find_opt candidate base with
            | Some v -> v
            | None -> Bitvec.zero w ))
        (List.combine shared_holes shared_hole_vars)
    in
    (* reconstruct precondition expressions over the datapath namespace *)
    let prefer = List.concat_map (fun (h : Oyster.Ast.hole_decl) -> h.Oyster.Ast.deps) holes in
    let ctx = Reconstruct.ctx_of_trace ~prefer trace in
    let pre_exprs, missing =
      List.fold_left
        (fun (acc, missing) (c : Ila.Conditions.conditions) ->
          match Reconstruct.expr_of_term ctx c.Ila.Conditions.pre with
          | Some e -> ((c.Ila.Conditions.instr_name, e) :: acc, missing)
          | None -> (acc, c.Ila.Conditions.instr_name :: missing))
        ([], []) conds
    in
    run.stats.wall_seconds <- now () -. run.started;
    if missing <> [] then
      Union_failed
        {
          diagnostic =
            Printf.sprintf
              "preconditions of %s are not expressible over the datapath wires"
              (String.concat ", " missing);
          stats = run.stats;
        }
    else begin
      let completed, bindings =
        Union.apply problem.design ~pre_exprs ~shared ~per_instr
      in
      run.stats.wall_seconds <- now () -. run.started;
      Solved { completed; bindings; per_instr; shared; pre_exprs; stats = run.stats }
    end
  with
  | Stop outcome ->
      stats.wall_seconds <- now () -. started;
      (* worker Stop payloads carry only that worker's tally; report the
         merged one *)
      with_stats stats outcome
