exception Engine_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Engine_error s)) fmt
