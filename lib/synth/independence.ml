(* The instruction-independence property (paper §3.3.1), whose two
   conditions license per-instruction synthesis + control union:

   1. Mutually exclusive preconditions: decided with the SMT solver on the
      compiled decode terms, pairwise.

   2. No feedback in control logic: a static reachability check on the
      sketch — no hole's output may combinationally reach another hole's
      declared dependency wires, except through wires whitelisted by the
      abstraction function's assumptions (valid/flush signals). *)

type exclusion_report = {
  overlapping : (string * string) list;  (* pairs that can decode together *)
  undecided : (string * string) list;  (* solver budget exhausted *)
}

let check_mutual_exclusion ?(budget = max_int)
    (conds : Ila.Conditions.conditions list) : exclusion_report =
  let overlapping = ref [] and undecided = ref [] in
  let arr = Array.of_list conds in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      let ci = arr.(i) and cj = arr.(j) in
      match
        Solver.check ~budget
          [ ci.Ila.Conditions.pre; ci.Ila.Conditions.assumes;
            cj.Ila.Conditions.pre; cj.Ila.Conditions.assumes ]
      with
      | Solver.Unsat _ -> ()
      | Solver.Sat _ ->
          overlapping :=
            (ci.Ila.Conditions.instr_name, cj.Ila.Conditions.instr_name)
            :: !overlapping
      | Solver.Unknown _ ->
          undecided :=
            (ci.Ila.Conditions.instr_name, cj.Ila.Conditions.instr_name)
            :: !undecided
    done
  done;
  { overlapping = List.rev !overlapping; undecided = List.rev !undecided }

type feedback_report = {
  (* hole h feeds wire w which hole h' depends on *)
  feedback_paths : (string * string * string) list;
}

let check_no_feedback ?(allowed_cuts = []) (design : Oyster.Ast.design) :
    feedback_report =
  let holes = Oyster.Ast.holes design in
  let hole_names = List.map (fun h -> h.Oyster.Ast.hole_name) holes in
  (* combinational taint: for each wire/output, the set of holes it depends
     on transitively (registers and memories break the cycle boundary; cut
     wires break the taint) *)
  let taint : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun h -> Hashtbl.replace taint h [ h ]) hole_names;
  let taint_of name =
    if List.mem name allowed_cuts then []
    else Option.value (Hashtbl.find_opt taint name) ~default:[]
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Oyster.Ast.Assign (name, e) -> (
          match Oyster.Ast.find_decl design name with
          | Some (Oyster.Ast.Wire _ | Oyster.Ast.Output _) ->
              let t =
                List.concat_map taint_of (Oyster.Ast.expr_vars e)
                |> List.sort_uniq String.compare
              in
              Hashtbl.replace taint name t
          | _ -> () (* registers break combinational feedback *))
      | Oyster.Ast.Write _ -> ())
    design.Oyster.Ast.stmts;
  let feedback_paths = ref [] in
  List.iter
    (fun (h : Oyster.Ast.hole_decl) ->
      List.iter
        (fun dep ->
          List.iter
            (fun source ->
              feedback_paths := (source, dep, h.Oyster.Ast.hole_name) :: !feedback_paths)
            (taint_of dep))
        h.Oyster.Ast.deps)
    holes;
  { feedback_paths = List.rev !feedback_paths }

let independent ?budget ?allowed_cuts design conds =
  let excl = check_mutual_exclusion ?budget conds in
  let fb = check_no_feedback ?allowed_cuts design in
  (excl, fb, excl.overlapping = [] && fb.feedback_paths = [])
