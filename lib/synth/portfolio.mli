(** Portfolio racing and cube-and-conquer for hard solver queries.

    The paper's central observation is that the monolithic ∀-query times
    out where per-instruction decomposition completes.  This module
    attacks exactly those queries with the idle capacity the pool
    manages, two ways:

    - {b Racing} ([racers > 1]): N diversified strategies
      ({!Solver.Strategy.diversify} of a base) race the same conjunction
      on pool domains.  Racers solve in conflict slices and, between
      slices, publish their LBD-filtered glue clauses to a shared
      blackboard and import what the others published — diversity finds
      short refutations, sharing compounds them.  The first finisher
      claims an atomic winner slot; the rest observe the claim at their
      next slice boundary and stand down (cooperative cancellation).

    - {b Cube-and-conquer} ([cube_vars = k > 0]): the ∀-verify splitter.
      A disjunctive goal ("some instruction violates its contract") is
      split structurally by ∨-elimination into up to [2^k] groups of
      disjuncts, each an independent sub-query that re-blasts only its
      own cones — recovering the paper's per-instruction decomposition
      from the monolithic query.  Non-disjunctive goals fall back to
      variable cubes: a probe session picks the [k] highest-occurrence
      SAT variables and the [2^k] sign cubes fan across the pool as
      assumption lists.  Either way the query is Unsat iff every cube
      is Unsat.

    {b Determinism contract.}  Both modes accelerate only the Unsat
    direction.  A Sat verdict is re-derived by a sequential base-strategy
    {!Solver.check} before being returned, so {!check} returns
    bit-identical models to sequential solving regardless of which racer
    or cube finished first.  Unsat/Sat verdicts themselves are
    solver-sound, hence schedule-independent.

    {b Sharing soundness.}  Blasting is deterministic: racer sessions
    asserting the same terms in the same order allocate identical SAT
    variable numberings, so learned clauses transfer meaningfully.  The
    {!Solver.Session.import_learnt} bounds check drops (and counts)
    anything out of range. *)

type options = {
  racers : int;  (** strategies to race; 1 = no race *)
  cube_vars : int;
      (** cube splitter branching variables; 0 = no cubes.  When both
          this and [racers] are set, cubes win: the splitter is the
          ∀-verify mode and does not race inside cubes. *)
  share_interval : int;
      (** conflicts per racer slice between sharing rounds *)
  share_max_lbd : int;  (** only clauses with LBD ≤ this travel *)
}

val default : options
(** [{racers = 1; cube_vars = 0; share_interval = 2000; share_max_lbd = 4}]
    — disabled (sequential). *)

val with_racers : int -> options -> options
(** Raises [Invalid_argument] if [racers < 1]. *)

val with_cube_vars : int -> options -> options
(** Raises [Invalid_argument] outside [0..12] (2^12 cubes is already far
    beyond any pool this runs on). *)

val with_share_interval : int -> options -> options
(** Raises [Invalid_argument] if [< 1]. *)

val with_share_max_lbd : int -> options -> options
(** Raises [Invalid_argument] if negative. *)

val enabled : options -> bool
(** Whether these options change anything over sequential solving. *)

(** {1 Tally}

    Cross-race accounting: per-racer win counts, sharing volumes, cube
    verdicts.  A caller shares one tally across many {!check} calls (it
    is internally locked) and reads it back for the bench report and the
    CLI summary. *)

type tally

type summary = {
  races : int;
  race_sat : int;
  race_unsat : int;
  race_unknown : int;
  win_counts : (int * int) list;
      (** [(racer index, races won)], ascending by index; racers that
          never won are absent *)
  shared_out : int;  (** glue clauses published to blackboards *)
  shared_in : int;  (** clauses imported from other racers *)
  shared_dropped : int;  (** imports rejected by the bounds check *)
  cube_calls : int;  (** queries split into cubes *)
  cubes : int;  (** total cubes fanned out *)
  cubes_sat : int;
  cubes_unsat : int;
  cubes_unknown : int;  (** includes cubes skipped after an early Sat *)
}

val create_tally : unit -> tally
val read_tally : tally -> summary

(** {1 Checking} *)

val check :
  ?options:options ->
  ?tally:tally ->
  ?cancel:(unit -> bool) ->
  ?budget:int ->
  ?deadline:float ->
  ?derive_sat:bool ->
  jobs:int ->
  strategy:Solver.Strategy.t ->
  Term.t list ->
  Solver.outcome
(** Decides the conjunction of width-1 terms like {!Solver.check}, racing
    or cubing according to [options] (default: sequential).  [budget]
    bounds SAT conflicts {e per racer / per cube} — each attempt gets the
    full budget, mirroring what a sequential call would have had.
    [cancel] is the cooperative cancellation token, polled at every slice
    boundary and cube pickup; cancellation surfaces as [Unknown].  [jobs]
    bounds the domains used (racing caps it at [racers]).  [derive_sat]
    (default [true]) applies the determinism contract: Sat verdicts are
    re-derived by a sequential base-strategy check.  Pass [false] when
    only the verdict matters (the engine's verify hooks fall through to
    their own deterministic model derivation on Sat) — the returned model
    is then whichever racer's or cube's happened to finish, which is
    schedule-dependent.  Statistics on the outcome sum the work of the
    winning racer's slices, or of all cubes.  Raises like {!Solver.check}
    on non-width-1 terms. *)
