(* Benchmark harness: regenerates every table of the paper's evaluation
   (§5).  Absolute times differ from the authors' Xeon workstation — the
   solver substrate here is this repository's own CDCL/bit-blasting stack —
   but the comparisons the paper draws are preserved: which configurations
   complete, their relative order, and the effect of the per-instruction
   optimization (see EXPERIMENTS.md).

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- table1    -- synthesis times (paper Table 1)
     dune exec bench/main.exe -- table2    -- design sizes (paper Table 2)
     dune exec bench/main.exe -- table3    -- constant-time study (paper §5.2)
     dune exec bench/main.exe -- micro     -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- ablation  -- engine ablations (DESIGN.md §5)
     dune exec bench/main.exe -- parallel  -- serial vs parallel CEGIS scheduler
     dune exec bench/main.exe -- incremental -- solver sessions vs fresh solver
     dune exec bench/main.exe -- serve     -- owl serve daemon under load
     dune exec bench/main.exe -- chaos     -- serve under injected fault plans
     dune exec bench/main.exe -- smoke     -- seconds-scale CI check, no report

   Regular invocations also write BENCH_<date>.json (section wall-clocks
   plus per-run solver statistics) for commit-to-commit comparison.

   The monolithic ("no instruction-independence") experiments run under a
   wall-clock deadline; exceeding it reports Timeout, reproducing the
   paper's RV32I-monolithic row. *)

let deadline = ref 60.0

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* {1 JSON report}

   Every regular bench invocation writes BENCH_<date>.json in the working
   directory: per-section wall clock plus one record per instrumented
   synthesis run (iterations, queries, SAT variables/clauses/conflicts),
   so performance is diffable across commits.  The [smoke] entry point
   skips the report (it runs inside the dune sandbox). *)

module Report = struct
  let runs : string list ref = ref []
  let sections : string list ref = ref []

  (* JSON emission lives in Owl_obs's [Json] (the escaping code originated
     here); the report and the Chrome trace sink share it *)
  let str = Json.str
  let obj = Json.obj

  let record fields = runs := obj fields :: !runs

  let stats_fields (st : Synth.Engine.stats) =
    [ ("iterations", string_of_int st.Synth.Engine.iterations);
      ("queries", string_of_int st.Synth.Engine.queries);
      ("sat_conflicts", string_of_int st.Synth.Engine.conflicts);
      ("sat_vars", string_of_int st.Synth.Engine.blasted_vars);
      ("sat_clauses", string_of_int st.Synth.Engine.blasted_clauses);
      ("trivial_unsats", string_of_int st.Synth.Engine.trivial_unsats);
      ("retried_queries", string_of_int st.Synth.Engine.retried_queries);
      ("degraded_queries", string_of_int st.Synth.Engine.degraded_queries);
      ("validation_failures",
       string_of_int st.Synth.Engine.validation_failures);
      ("task_retries", string_of_int st.Synth.Engine.task_retries);
      ("sat_restarts", string_of_int st.Synth.Engine.sat_restarts);
      ("sat_learnt_kept", string_of_int st.Synth.Engine.sat_learnt_kept);
      ("sat_learnt_deleted", string_of_int st.Synth.Engine.sat_learnt_deleted);
      ("sat_subsumed", string_of_int st.Synth.Engine.sat_subsumed);
      ("sat_strengthened", string_of_int st.Synth.Engine.sat_strengthened);
      ("sat_vivified", string_of_int st.Synth.Engine.sat_vivified);
      ("sat_eliminated", string_of_int st.Synth.Engine.sat_eliminated);
      ("sat_rephases", string_of_int st.Synth.Engine.sat_rephases);
      ("races", string_of_int st.Synth.Engine.races);
      ("race_unsat", string_of_int st.Synth.Engine.race_unsat);
      ("race_shared_out", string_of_int st.Synth.Engine.race_shared_out);
      ("race_shared_in", string_of_int st.Synth.Engine.race_shared_in);
      ("cubes", string_of_int st.Synth.Engine.cubes);
      ("cubes_unsat", string_of_int st.Synth.Engine.cubes_unsat) ]

  let record_run ~section ~label ~outcome ~wall st =
    record
      ([ ("section", str section); ("label", str label);
         ("outcome", str outcome);
         ("wall_seconds", Printf.sprintf "%.6f" wall) ]
      @ match st with None -> [] | Some st -> stats_fields st)

  let record_section name wall =
    sections :=
      obj [ ("name", str name); ("wall_seconds", Printf.sprintf "%.6f" wall) ]
      :: !sections

  (* histogram summaries (and counters) accumulated by Owl_obs across the
     whole invocation — query latency, conflicts per check, clauses per
     blast — embedded so the distribution shape is diffable across
     commits, not just the totals *)
  let metric_objs () =
    List.map
      (fun (m : Obs.metric) ->
        obj
          ([ ("name", str m.Obs.metric_name);
             ("kind",
              str
                (match m.Obs.metric_kind with
                 | `Counter -> "counter"
                 | `Gauge -> "gauge"
                 | `Histogram -> "histogram"
                 | `Window -> "window"));
             ("count", Json.int m.Obs.count);
             ("sum", Json.int m.Obs.sum) ]
          @
          match m.Obs.metric_kind with
          | `Counter | `Gauge -> []
          | `Histogram | `Window ->
              [ ("min", Json.int m.Obs.min_value);
                ("max", Json.int m.Obs.max_value);
                ("p50", Json.int m.Obs.p50);
                ("p90", Json.int m.Obs.p90);
                ("p99", Json.int m.Obs.p99) ]))
      (Obs.metrics ())

  let write () =
    let tm = Unix.localtime (Unix.gettimeofday ()) in
    let date =
      Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    in
    let file = Printf.sprintf "BENCH_%s.json" date in
    let arr l = "[\n    " ^ String.concat ",\n    " (List.rev l) ^ "\n  ]" in
    let oc = open_out file in
    output_string oc
      ("{\n  \"date\": " ^ str date ^ ",\n  \"sections\": " ^ arr !sections
     ^ ",\n  \"runs\": " ^ arr !runs ^ ",\n  \"metrics\": "
     ^ arr (List.rev (metric_objs ()))
     ^ "\n}\n");
    close_out oc;
    Printf.printf "\nbenchmark report written to %s\n" file
end

type row_result =
  | RSolved of Synth.Engine.solved * float
  | RTimeout of float
  | RFailed of string

let run_problem ?(mode = Synth.Engine.Per_instruction) ?(jobs = 1)
    ?(incremental = true) ?cache ?tag problem =
  let options =
    Synth.Engine.(
      default_options |> with_mode mode |> with_jobs jobs
      |> with_deadline (Some !deadline)
      |> with_incremental incremental |> with_cache cache)
  in
  let outcome, dt = time (fun () -> Synth.Engine.synthesize ~options problem) in
  let result =
    match outcome with
    | Synth.Engine.Solved s -> RSolved (s, dt)
    | Synth.Engine.Timeout _ -> RTimeout dt
    | Synth.Engine.Unrealizable { instr; _ } ->
        RFailed (Printf.sprintf "unrealizable %s" (Option.value instr ~default:"?"))
    | Synth.Engine.Union_failed { diagnostic; _ } -> RFailed diagnostic
    | Synth.Engine.Not_independent _ -> RFailed "not independent"
  in
  (match tag with
  | None -> ()
  | Some (section, label) ->
      let outcome_str, st =
        match result with
        | RSolved (s, _) -> ("solved", Some s.Synth.Engine.stats)
        | RTimeout _ -> ("timeout", None)
        | RFailed m -> ("failed: " ^ m, None)
      in
      Report.record_run ~section ~label ~outcome:outcome_str ~wall:dt st);
  result

(* {1 Table 1: control logic synthesis times} *)

let table1 () =
  print_endline "";
  print_endline "Table 1: control logic synthesis over all case studies";
  print_endline "(+ = monolithic, i.e. without the instruction-independence";
  Printf.printf "optimization; timeout = %.0fs wall clock)\n" !deadline;
  print_endline "";
  Printf.printf "%-19s %-14s %10s %19s\n" "Design" "Variant" "Sketch LoC"
    "Synthesis Time (s)";
  print_endline (String.make 66 '-');
  let row design variant problem mode =
    let loc = Oyster.Printer.loc problem.Synth.Engine.design in
    Printf.printf "%-19s %-14s %10d %!" design variant loc;
    match run_problem ~mode ~tag:("table1", design ^ " " ^ variant) problem with
    | RSolved (_, dt) -> Printf.printf "%19.1f\n%!" dt
    | RTimeout _ -> Printf.printf "%19s\n%!" "Timeout"
    | RFailed msg -> Printf.printf "%19s\n%!" ("FAILED: " ^ msg)
  in
  row "AES Accelerator" "-" (Designs.Aes.problem ()) Synth.Engine.Per_instruction;
  row "AES Accelerator+" "-" (Designs.Aes.problem ()) Synth.Engine.Monolithic;
  List.iter
    (fun v ->
      row "Single-Cycle Core" (Isa.Rv32.variant_name v)
        (Designs.Riscv_single.problem v)
        Synth.Engine.Per_instruction)
    [ Isa.Rv32.RV32I; Isa.Rv32.RV32I_Zbkb; Isa.Rv32.RV32I_Zbkc ];
  row "Single-Cycle Core+" "RV32I"
    (Designs.Riscv_single.problem Isa.Rv32.RV32I)
    Synth.Engine.Monolithic;
  List.iter
    (fun v ->
      row "Two-Stage Core" (Isa.Rv32.variant_name v)
        (Designs.Riscv_two_stage.problem v)
        Synth.Engine.Per_instruction)
    [ Isa.Rv32.RV32I; Isa.Rv32.RV32I_Zbkb; Isa.Rv32.RV32I_Zbkc ];
  row "Crypto Core" "CMOV ISA" (Designs.Crypto_core.problem ())
    Synth.Engine.Per_instruction;
  (* beyond the paper: the M standard extension (multiply/divide units) *)
  row "Single-Cycle Core" "RV32I + M*"
    (Designs.Riscv_single.problem Isa.Rv32.RV32I_M)
    Synth.Engine.Per_instruction;
  print_endline "(* = beyond the paper's variants: the RISC-V M extension)"

(* {1 Table 2: size of generated control vs hand-written reference} *)

let table2 () =
  print_endline "";
  print_endline "Table 2: size of designs with generated control logic compared";
  print_endline "to a hand-written reference (single-cycle core)";
  print_endline "";
  Printf.printf "%-14s %9s %9s | %10s %10s %10s %10s\n" "Variant" "HDL(ref)"
    "HDL(gen)" "Gates(ref)" "Gates(gen)" "Gates(opt)" "ref(opt)";
  print_endline (String.make 82 '-');
  List.iter
    (fun v ->
      let refd = Designs.Riscv_single.reference_design v in
      let ref_loc =
        Hdl.Pyrtl.bindings_loc (Designs.Riscv_single.reference_bindings v)
      in
      match run_problem (Designs.Riscv_single.problem v) with
      | RSolved (s, _) ->
          let gen_loc =
            Hdl.Pyrtl.generated_loc ~pre_exprs:s.Synth.Engine.pre_exprs
              ~per_instr:s.Synth.Engine.per_instr ~shared:s.Synth.Engine.shared
          in
          let nr = Netlist.of_design ~optimize:false refd in
          let ng = Netlist.of_design ~optimize:false s.Synth.Engine.completed in
          let no = Netlist.of_design ~optimize:true s.Synth.Engine.completed in
          let nro = Netlist.of_design ~optimize:true refd in
          Printf.printf "%-14s %9d %9d | %10d %10d %10d %10d\n%!"
            (Isa.Rv32.variant_name v) ref_loc gen_loc nr.Netlist.total_gates
            ng.Netlist.total_gates no.Netlist.total_gates nro.Netlist.total_gates
      | RTimeout _ | RFailed _ ->
          Printf.printf "%-14s synthesis failed\n%!" (Isa.Rv32.variant_name v))
    [ Isa.Rv32.RV32I; Isa.Rv32.RV32I_Zbkb; Isa.Rv32.RV32I_Zbkc ];
  print_endline "";
  print_endline "HDL = control logic lines (PyRTL rendering); Gates = combinational";
  print_endline "cells after compiling the whole core (register file materialized,";
  print_endline "instruction/data memories as ports); opt = structural hashing +";
  print_endline "algebraic rewrites + dead-gate elimination (the Yosys stand-in)."

(* {1 Table 3: the constant-time cryptography study (paper §5.2)} *)

let table3 () =
  print_endline "";
  print_endline "Table 3 (paper section 5.2): SHA-256 on the constant-time crypto";
  print_endline "core; cycle counts must be independent of the input, and the";
  print_endline "synthesized control must match the hand-written reference.";
  print_endline "";
  match run_problem (Designs.Crypto_core.problem ()) with
  | RSolved (s, dt) ->
      Printf.printf "control synthesis: %.1fs\n\n" dt;
      let program = Sha_program.generate () in
      let halt_pc = 4 * (List.length program - 1) in
      Printf.printf "SHA-256 program: %d instructions\n\n" (List.length program);
      Printf.printf "%6s %18s %18s %8s\n" "len" "cycles(generated)"
        "cycles(reference)" "digest";
      print_endline (String.make 56 '-');
      let refd = Designs.Crypto_core.reference_design () in
      let run design msg =
        let r =
          Designs.Testbench.run_core design ~program
            ~dmem_init:(Sha_program.pack_input msg) ~halt_pc ~max_cycles:20000
        in
        let digest =
          Sha_program.read_digest (fun a ->
              Designs.Testbench.core_dmem r.Designs.Testbench.state a)
        in
        let hex =
          String.concat ""
            (Array.to_list (Array.map (Printf.sprintf "%08x") digest))
        in
        (Option.get r.Designs.Testbench.cycles_to_halt, hex)
      in
      List.iter
        (fun len ->
          let msg = String.init len (fun i -> Char.chr (33 + (i * 11 mod 90))) in
          let cg, hg = run s.Synth.Engine.completed msg in
          let cr, hr = run refd msg in
          let ok = hg = Sha256.digest_hex msg && hr = hg && cg = cr in
          Printf.printf "%6d %18d %18d %8s\n%!" len cg cr
            (if ok then "OK" else "MISMATCH"))
        [ 4; 8; 12; 16; 20; 24; 28; 32 ]
  | RTimeout _ | RFailed _ -> print_endline "crypto core synthesis failed"

(* {1 Ablations (DESIGN.md section 5)} *)

let ablation () =
  print_endline "";
  print_endline "Ablation: per-instruction vs monolithic CEGIS on the RV32I";
  print_endline "single-cycle core, plus the instruction-independence checks.";
  print_endline "";
  let problem = Designs.Riscv_single.problem Isa.Rv32.RV32I in
  (match run_problem problem with
  | RSolved (s, dt) ->
      Printf.printf
        "per-instruction: %.2fs, %d CEGIS rounds, %d solver queries, %d conflicts\n"
        dt s.Synth.Engine.stats.Synth.Engine.iterations
        s.Synth.Engine.stats.Synth.Engine.queries
        s.Synth.Engine.stats.Synth.Engine.conflicts
  | _ -> print_endline "per-instruction failed");
  (match
     run_problem ~mode:Synth.Engine.Monolithic
       (Designs.Riscv_single.problem Isa.Rv32.RV32I)
   with
  | RSolved (_, dt) -> Printf.printf "monolithic:      %.2fs\n" dt
  | RTimeout dt -> Printf.printf "monolithic:      Timeout after %.1fs\n" dt
  | RFailed m -> Printf.printf "monolithic:      failed (%s)\n" m);
  let trace =
    Oyster.Symbolic.eval problem.Synth.Engine.design
      ~cycles:problem.Synth.Engine.af.Ila.Absfun.cycles
  in
  let conds =
    Ila.Conditions.compile problem.Synth.Engine.spec problem.Synth.Engine.af trace
  in
  let excl, dt = time (fun () -> Synth.Independence.check_mutual_exclusion conds) in
  Printf.printf
    "mutual exclusion: %d instruction pairs checked in %.2fs, %d overlaps\n"
    (List.length conds * (List.length conds - 1) / 2)
    dt
    (List.length excl.Synth.Independence.overlapping);
  let fb = Synth.Independence.check_no_feedback problem.Synth.Engine.design in
  Printf.printf "control feedback paths: %d\n"
    (List.length fb.Synth.Independence.feedback_paths);
  (* verification-only cost: checking the hand-written reference control *)
  let vproblem =
    { problem with
      Synth.Engine.design = Designs.Riscv_single.reference_design Isa.Rv32.RV32I }
  in
  let results, dt = time (fun () -> Synth.Engine.verify vproblem) in
  Printf.printf "verify reference control: %d/%d instructions in %.2fs\n"
    (List.length
       (List.filter (fun (_, v) -> v = Synth.Engine.Verified) results))
    (List.length results) dt;
  (* don't-care minimization (the section-5.3 "optimal control" direction) *)
  match run_problem problem with
  | RSolved (s, _) ->
      let before_loc = Hdl.Pyrtl.bindings_loc s.Synth.Engine.bindings in
      let before_gates =
        (Netlist.of_design ~optimize:true s.Synth.Engine.completed).Netlist.total_gates
      in
      let m = Synth.Minimize.run problem s in
      let s' = m.Synth.Minimize.solved in
      Printf.printf
        "don't-care minimization: %.2fs, %d checks, %d merges; control loc %d -> %d; gates(opt) %d -> %d\n"
        m.Synth.Minimize.minimize_stats.Synth.Minimize.wall_seconds
        m.Synth.Minimize.minimize_stats.Synth.Minimize.checks
        m.Synth.Minimize.minimize_stats.Synth.Minimize.merged before_loc
        (Hdl.Pyrtl.bindings_loc s'.Synth.Engine.bindings)
        before_gates
        (Netlist.of_design ~optimize:true s'.Synth.Engine.completed).Netlist.total_gates
  | _ -> print_endline "minimization skipped (synthesis failed)" 

(* {1 Parallel scheduler: serial vs fanned-out per-instruction CEGIS} *)

let parallel () =
  print_endline "";
  print_endline "Parallel per-instruction CEGIS: serial (jobs=1) vs worker pool";
  print_endline "(jobs=4) on the RV32I single-cycle core.  The merge is";
  print_endline "deterministic, so both schedules must produce identical";
  print_endline "bindings; wall-clock gains require actual cores.";
  Printf.printf "(this machine reports %d usable core(s))\n\n"
    (Synth.Pool.default_jobs ());
  let describe tag jobs =
    match run_problem ~jobs (Designs.Riscv_single.problem Isa.Rv32.RV32I) with
    | RSolved (s, dt) ->
        Printf.printf "%-14s %8.2fs  %4d rounds  %5d queries  %7d conflicts\n%!"
          tag dt s.Synth.Engine.stats.Synth.Engine.iterations
          s.Synth.Engine.stats.Synth.Engine.queries
          s.Synth.Engine.stats.Synth.Engine.conflicts;
        Some s
    | RTimeout dt ->
        Printf.printf "%-14s Timeout after %.1fs\n%!" tag dt;
        None
    | RFailed m ->
        Printf.printf "%-14s failed (%s)\n%!" tag m;
        None
  in
  match (describe "jobs=1 (serial)" 1, describe "jobs=4 (pool)" 4) with
  | Some s1, Some s4 ->
      let same =
        s1.Synth.Engine.per_instr = s4.Synth.Engine.per_instr
        && s1.Synth.Engine.shared = s4.Synth.Engine.shared
        && List.length s1.Synth.Engine.bindings
           = List.length s4.Synth.Engine.bindings
        && List.for_all2
             (fun (h1, e1) (h2, e2) -> h1 = h2 && e1 = e2)
             s1.Synth.Engine.bindings s4.Synth.Engine.bindings
      in
      Printf.printf "bindings identical across schedules: %s\n"
        (if same then "yes" else "NO (determinism bug)");
      if not same then exit 1
  | _ -> ()

(* {1 Incremental solver sessions vs fresh solver per query} *)

let incremental () =
  print_endline "";
  print_endline "Incremental solver sessions: one persistent session per CEGIS";
  print_endline "loop (SAT state, Tseitin cache, learned clauses survive across";
  print_endline "iterations; stale candidates retracted via activation literals)";
  print_endline "vs the historical fresh solver per query.";
  print_endline "";
  Printf.printf "%-24s %-12s %8s %7s %8s %12s %10s\n" "Design" "Mode" "wall(s)"
    "rounds" "queries" "clauses" "conflicts";
  print_endline (String.make 88 '-');
  let run_mode name problem ~incr ~jobs =
    let mode_tag =
      (if incr then "session" else "fresh") ^ Printf.sprintf " j%d" jobs
    in
    match run_problem ~jobs ~incremental:incr
            ~tag:("incremental", name ^ " " ^ mode_tag) problem
    with
    | RSolved (s, dt) ->
        let st = s.Synth.Engine.stats in
        Printf.printf "%-24s %-12s %8.2f %7d %8d %12d %10d\n%!" name mode_tag dt
          st.Synth.Engine.iterations st.Synth.Engine.queries
          st.Synth.Engine.blasted_clauses st.Synth.Engine.conflicts;
        Some (s, dt)
    | RTimeout dt ->
        Printf.printf "%-24s %-12s Timeout after %.1fs\n%!" name mode_tag dt;
        None
    | RFailed m ->
        Printf.printf "%-24s %-12s failed (%s)\n%!" name mode_tag m;
        None
  in
  let ok = ref true in
  let compare name problem =
    let inc = run_mode name problem ~incr:true ~jobs:1 in
    let fresh = run_mode name problem ~incr:false ~jobs:1 in
    let inc4 = run_mode name problem ~incr:true ~jobs:4 in
    match (inc, fresh, inc4) with
    | Some (si, wi), Some (sf, wf), Some (s4, _) ->
        let sti = si.Synth.Engine.stats and stf = sf.Synth.Engine.stats in
        let fewer =
          sti.Synth.Engine.blasted_clauses < stf.Synth.Engine.blasted_clauses
        in
        let faster = wi < wf in
        let same a b =
          a.Synth.Engine.per_instr = b.Synth.Engine.per_instr
          && a.Synth.Engine.shared = b.Synth.Engine.shared
        in
        Printf.printf
          "  %s: %.1fx fewer clauses (%s), %.2fx wall (%s), bindings vs fresh %s, jobs=4 deterministic %s\n%!"
          name
          (float_of_int stf.Synth.Engine.blasted_clauses
          /. float_of_int (max 1 sti.Synth.Engine.blasted_clauses))
          (if fewer then "ok" else "REGRESSION")
          (wf /. wi)
          (if faster then "ok" else "slower")
          (if same si sf then "identical" else "differ (both verified)")
          (if same si s4 then "ok" else "BUG");
        Report.record
          [ ("section", Report.str "incremental");
            ("label", Report.str (name ^ " summary"));
            ("incremental_clauses",
             string_of_int sti.Synth.Engine.blasted_clauses);
            ("fresh_clauses", string_of_int stf.Synth.Engine.blasted_clauses);
            ("incremental_wall_seconds", Printf.sprintf "%.6f" wi);
            ("fresh_wall_seconds", Printf.sprintf "%.6f" wf);
            ("fewer_clauses", string_of_bool fewer);
            ("faster", string_of_bool faster);
            ("bindings_identical_to_fresh", string_of_bool (same si sf));
            ("jobs4_deterministic", string_of_bool (same si s4)) ];
        if (not fewer) || not (same si s4) then ok := false
    | _ -> ok := false
  in
  compare "accumulator" (Designs.Accumulator.problem ());
  compare "rv32-single RV32I" (Designs.Riscv_single.problem Isa.Rv32.RV32I);
  print_endline "";
  if !ok then
    print_endline
      "incremental sessions: strictly fewer blasted clauses on every design; \
       jobs=4 bindings identical to jobs=1"
  else begin
    print_endline "incremental sessions: REGRESSION (see rows above)";
    exit 1
  end

(* {1 Cross-run synthesis cache: cold vs warm}

   Three runs of the RV32I single-cycle core against one cache directory:
   a cold run that populates it, a warm jobs=1 rerun, and a warm jobs=4
   rerun.  The warm runs must reproduce the cold run's hole bindings
   bit for bit from validated result-tier hits, with measurably fewer
   solver queries; the per-run hit/miss/stale/write counters land in the
   JSON report. *)

let cache_bench () =
  print_endline "";
  print_endline "Cross-run synthesis cache: cold vs warm on the RV32I";
  print_endline "single-cycle core (one shared cache directory; each warm";
  print_endline "run must reproduce the cold bindings bit for bit from";
  print_endline "validated result-tier hits, with fewer solver queries).";
  print_endline "";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "owl-bench-cache.%d" (Unix.getpid ()))
  in
  Printf.printf "%-16s %8s %8s %6s %6s %6s %6s\n" "Run" "wall(s)" "queries"
    "hits" "misses" "stale" "writes";
  print_endline (String.make 62 '-');
  (* a fresh handle per run keeps the counters per-run; the directory is
     shared so later runs see earlier entries *)
  let run tag ~jobs =
    let cache = Owl_cache.open_dir dir in
    let r =
      run_problem ~jobs ~cache ~tag:("cache", tag)
        (Designs.Riscv_single.problem Isa.Rv32.RV32I)
    in
    let k = Owl_cache.counters cache in
    (match r with
    | RSolved (s, dt) ->
        Printf.printf "%-16s %8.2f %8d %6d %6d %6d %6d\n%!" tag dt
          s.Synth.Engine.stats.Synth.Engine.queries k.Owl_cache.hits
          k.Owl_cache.misses k.Owl_cache.stale k.Owl_cache.writes
    | RTimeout dt -> Printf.printf "%-16s Timeout after %.1fs\n%!" tag dt
    | RFailed m -> Printf.printf "%-16s failed (%s)\n%!" tag m);
    Report.record
      [ ("section", Report.str "cache"); ("label", Report.str tag);
        ("cache_hits", string_of_int k.Owl_cache.hits);
        ("cache_misses", string_of_int k.Owl_cache.misses);
        ("cache_stale", string_of_int k.Owl_cache.stale);
        ("cache_writes", string_of_int k.Owl_cache.writes) ];
    (r, k)
  in
  let cold, _ = run "cold j1" ~jobs:1 in
  let warm1, k1 = run "warm j1" ~jobs:1 in
  let warm4, k4 = run "warm j4" ~jobs:4 in
  (* clean up the temporary store whatever happened above *)
  let cleanup () =
    ignore (Owl_cache.clear (Owl_cache.open_dir dir));
    List.iter
      (fun d -> try Unix.rmdir d with Unix.Unix_error _ -> ())
      [ Filename.concat dir "r"; Filename.concat dir "w"; dir ]
  in
  (match (cold, warm1, warm4) with
  | RSolved (sc, _), RSolved (s1, _), RSolved (s4, _) ->
      let same (a : Synth.Engine.solved) (b : Synth.Engine.solved) =
        a.Synth.Engine.per_instr = b.Synth.Engine.per_instr
        && a.Synth.Engine.shared = b.Synth.Engine.shared
      in
      let qc = sc.Synth.Engine.stats.Synth.Engine.queries in
      let q1 = s1.Synth.Engine.stats.Synth.Engine.queries in
      let q4 = s4.Synth.Engine.stats.Synth.Engine.queries in
      let identical = same sc s1 && same sc s4 in
      let fewer = q1 < qc && q4 < qc in
      let hits = k1.Owl_cache.hits > 0 && k4.Owl_cache.hits > 0 in
      Printf.printf
        "\n  bindings identical across cold/warm/jobs=4: %s; queries %d -> \
         %d (j1) / %d (j4): %s; warm hit rate nonzero: %s\n"
        (if identical then "yes" else "NO (cache corruption)")
        qc q1 q4
        (if fewer then "fewer" else "NOT FEWER")
        (if hits then "yes" else "NO");
      if not (identical && fewer && hits) then begin
        cleanup ();
        print_endline "cache: REGRESSION (see rows above)";
        exit 1
      end
  | _ ->
      cleanup ();
      print_endline "cache: synthesis failed";
      exit 1);
  cleanup ()

(* {1 The serve daemon under load}

   Boots a real [owl serve] daemon (in process, on a /tmp Unix socket —
   socket paths are length-capped, so the working directory cannot host
   one) and pushes ~1000 mixed requests through the wire protocol at
   several client counts.  The mix interleaves synthesis and
   verification over a small set of distinct option fingerprints, so
   the first request of each fingerprint is cold (runs on a worker
   domain) and every repeat must come back from the hot tier.  A fresh
   daemon per client count keeps the hit rates comparable.

   What must hold, per run: zero protocol errors (every request gets a
   well-framed terminal reply), zero admission rejections (the queue is
   sized for the load), and every hot reply streamed zero progress
   events — the protocol-level witness that a warm repeat touched no
   solver.  Hit rates are computed from the client-observed [hot]
   flags; the server's own tier counters are recorded alongside (they
   run higher on misses: a cold request probes the tier once in the
   reader and once in the worker). *)

let serve_bench () =
  print_endline "";
  print_endline
    "Serve: daemon under load (mixed cold/warm synth+verify requests)";
  print_endline
    "clients   requests  cold   hot  hit-rate  p50(ms)  p99(ms)   req/s";
  let synth_problem = Designs.Accumulator.problem () in
  let verify_problem =
    {
      synth_problem with
      Synth.Engine.design = Designs.Accumulator.reference_design ();
    }
  in
  let lookup kind _name =
    match kind with
    | `Synth -> Some synth_problem
    | `Verify -> Some verify_problem
  in
  let total = 1000 and distinct = 16 in
  List.iter
    (fun clients ->
      let sock =
        Printf.sprintf "/tmp/owl-bench-serve-%d-%d.sock" (Unix.getpid ())
          clients
      in
      let addr = Owl_serve.Proto.Unix_path sock in
      let ready = Atomic.make false in
      let server =
        Thread.create
          (fun () ->
            Owl_serve.Server.run
              ~ready:(fun () -> Atomic.set ready true)
              {
                Owl_serve.Server.addr;
                jobs = 4;
                queue_depth = total;
                hot_tier_size = 64;
                cache = None;
                server_name = "owl-bench";
                telemetry = true;
                dump_dir = None;
              }
              ~lookup)
          ()
      in
      while not (Atomic.get ready) do
        Thread.delay 0.002
      done;
      let per = total / clients in
      let n = per * clients in
      let latencies = Array.make n 0.0 in
      let hot_answers = Atomic.make 0 in
      let errors = Atomic.make 0 in
      let tainted_hot = Atomic.make 0 in
      let t0 = Unix.gettimeofday () in
      let run_client ci =
        try
          let c = Owl_serve.Client.connect addr in
          for k = 0 to per - 1 do
            let seq = (ci * per) + k in
            (* distinct max_iterations values give [distinct] synth and
               [distinct] verify fingerprints; everything else is warm *)
            let options =
              Synth.Engine.(
                default_options |> with_max_iterations (300 + (seq mod distinct)))
            in
            let progress = ref 0 in
            let on_progress _ = incr progress in
            let t = Unix.gettimeofday () in
            let hot =
              if seq mod 5 = 4 then
                (Owl_serve.Client.verify ~on_progress c ~design:"acc" options)
                  .Owl_serve.Proto.v_hot
              else begin
                let r =
                  Owl_serve.Client.synth ~on_progress c ~design:"acc" options
                in
                if r.Owl_serve.Proto.outcome <> "solved" then
                  Atomic.incr errors;
                r.Owl_serve.Proto.hot
              end
            in
            latencies.(seq) <- Unix.gettimeofday () -. t;
            if hot then begin
              Atomic.incr hot_answers;
              (* a hot reply that streamed progress ran a solver: broken *)
              if !progress > 0 then Atomic.incr tainted_hot
            end
          done;
          Owl_serve.Client.close c
        with _ -> Atomic.incr errors
      in
      let threads =
        List.init clients (fun ci -> Thread.create run_client ci)
      in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      let admin = Owl_serve.Client.connect addr in
      let stats = Owl_serve.Client.cache_stats admin in
      Owl_serve.Client.shutdown admin;
      Owl_serve.Client.close admin;
      Thread.join server;
      Array.sort compare latencies;
      let pct p =
        latencies.(min (n - 1) (int_of_float (p *. float_of_int n)))
      in
      let tier_hits, tier_misses =
        match stats.Owl_serve.Proto.hot_tier with
        | Some h -> (h.Owl_serve.Proto.hot_hits, h.Owl_serve.Proto.hot_misses)
        | None -> (0, 0)
      in
      let hot = Atomic.get hot_answers in
      let cold = n - hot in
      let rate = float_of_int hot /. float_of_int n in
      Printf.printf "%7d %10d %5d %5d %8.1f%% %8.2f %8.2f %7.0f\n%!" clients n
        cold hot (100.0 *. rate) (pct 0.50 *. 1e3) (pct 0.99 *. 1e3)
        (float_of_int n /. wall);
      let failed =
        Atomic.get errors > 0
        || Atomic.get tainted_hot > 0
        || stats.Owl_serve.Proto.rejected > 0
        || hot = 0
      in
      if failed then begin
        Printf.eprintf
          "serve: REGRESSION (%d errors, %d hot replies with progress, %d \
           rejected, %d hot answers)\n"
          (Atomic.get errors) (Atomic.get tainted_hot)
          stats.Owl_serve.Proto.rejected hot;
        exit 1
      end;
      Report.record
        [ ("section", Report.str "serve");
          ("label", Report.str (Printf.sprintf "%d clients" clients));
          ("clients", string_of_int clients);
          ("requests", string_of_int n);
          ("cold", string_of_int cold);
          ("hot", string_of_int hot);
          ("hot_hit_rate", Printf.sprintf "%.4f" rate);
          ("tier_hits", string_of_int tier_hits);
          ("tier_misses", string_of_int tier_misses);
          ("rejected", string_of_int stats.Owl_serve.Proto.rejected);
          ("protocol_errors", string_of_int (Atomic.get errors));
          ("p50_ms", Printf.sprintf "%.3f" (pct 0.50 *. 1e3));
          ("p99_ms", Printf.sprintf "%.3f" (pct 0.99 *. 1e3));
          ("throughput_rps", Printf.sprintf "%.1f" (float_of_int n /. wall));
          ("wall_seconds", Printf.sprintf "%.6f" wall) ])
    [ 1; 4; 8 ]

(* {1 Chaos: the daemon under injected fault plans}

   The serve workload re-run under deterministic fault plans (DESIGN.md
   §13): worker kills, connection drops, frame delays, and forced
   admission sheds, injected by global index through the [Fault] hooks
   the daemon consults.  Four retrying clients push 1000 mixed requests
   through each plan.

   What must hold, per plan: the run drains (completing at all is the
   no-hang witness — every client bounds its attempts), zero requests
   fail after the client's bounded retries, every solved synthesis
   reply carries bindings bit-identical to the fault-free baseline
   (faults may cost recomputation, never a wrong answer), and the
   daemon recovers to full capacity — a fresh cold request solves, the
   pool reports every worker alive, and nothing is left queued.  The
   per-plan failure counters (workers lost, sheds, cancellations,
   degraded time) land in the JSON report alongside the Owl_obs
   counters. *)

let chaos () =
  print_endline "";
  print_endline "Chaos: serve daemon under injected fault plans (1000 mixed";
  print_endline "requests per plan, 4 retrying clients; every plan must drain";
  print_endline "with zero unrecovered errors, bit-identical bindings, and a";
  print_endline "fully recovered worker pool).";
  print_endline "";
  let synth_problem = Designs.Accumulator.problem () in
  let verify_problem =
    { synth_problem with
      Synth.Engine.design = Designs.Accumulator.reference_design () }
  in
  let lookup kind _name =
    match kind with
    | `Synth -> Some synth_problem
    | `Verify -> Some verify_problem
  in
  let total = 1000 and distinct = 16 and clients = 4 and jobs = 4 in
  (* first solved synthesis of the fault-free plan; every later solved
     reply, in every plan, must match it bit for bit *)
  let baseline_bindings = ref None in
  Printf.printf "%-12s %8s %7s %7s %5s %5s %7s %8s %8s\n" "Plan" "requests"
    "errors" "retries" "lost" "shed" "cancel" "degr(s)" "wall(s)";
  print_endline (String.make 76 '-');
  let run_plan (tag, plan, expect_lost) =
    if plan <> "" then Fault.install (Fault.parse plan);
    Fun.protect ~finally:Fault.clear @@ fun () ->
    let sock =
      Printf.sprintf "/tmp/owl-bench-chaos-%d-%s.sock" (Unix.getpid ()) tag
    in
    let addr = Owl_serve.Proto.Unix_path sock in
    let ready = Atomic.make false in
    let server =
      Thread.create
        (fun () ->
          Owl_serve.Server.run
            ~ready:(fun () -> Atomic.set ready true)
            {
              Owl_serve.Server.addr;
              jobs;
              queue_depth = total;
              hot_tier_size = 64;
              cache = None;
              server_name = "owl-chaos";
              telemetry = true;
              dump_dir = None;
            }
            ~lookup)
        ()
    in
    while not (Atomic.get ready) do
      Thread.delay 0.002
    done;
    let per = total / clients in
    let n = per * clients in
    let errors = Atomic.make 0 in
    let retried = Atomic.make 0 in
    let divergent = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let run_client ci =
      for k = 0 to per - 1 do
        let seq = (ci * per) + k in
        let options =
          Synth.Engine.(
            default_options |> with_max_iterations (300 + (seq mod distinct)))
        in
        match
          Owl_serve.Client.with_retry ~retries:6 ~backoff_ms:5 ~seed:seq
            ~on_retry:(fun ~attempt:_ ~delay:_ _ -> Atomic.incr retried)
            addr
            (fun c ->
              if seq mod 5 = 4 then
                ignore (Owl_serve.Client.verify c ~design:"acc" options)
              else
                let r = Owl_serve.Client.synth c ~design:"acc" options in
                if r.Owl_serve.Proto.outcome <> "solved" then
                  Atomic.incr errors
                else
                  match !baseline_bindings with
                  | None ->
                      baseline_bindings := Some r.Owl_serve.Proto.bindings
                  | Some b ->
                      if r.Owl_serve.Proto.bindings <> b then
                        Atomic.incr divergent)
        with
        | () -> ()
        | exception _ -> Atomic.incr errors
      done
    in
    let threads = List.init clients (fun ci -> Thread.create run_client ci) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let fired = Fault.fired () in
    (* recovery: a fresh cold fingerprint must still solve on a worker,
       and the pool must report full strength *)
    let admin = Owl_serve.Client.connect addr in
    let post =
      Owl_serve.Client.synth admin ~design:"acc"
        Synth.Engine.(default_options |> with_max_iterations 997)
    in
    let _, _, h = Owl_serve.Client.ping admin in
    Owl_serve.Client.shutdown admin;
    Owl_serve.Client.close admin;
    Thread.join server;
    Printf.printf "%-12s %8d %7d %7d %5d %5d %7d %8.2f %8.2f\n%!" tag n
      (Atomic.get errors) (Atomic.get retried) h.Owl_serve.Proto.workers_lost
      h.Owl_serve.Proto.shed h.Owl_serve.Proto.cancelled
      h.Owl_serve.Proto.degraded_seconds wall;
    let failed =
      Atomic.get errors > 0
      || Atomic.get divergent > 0
      || post.Owl_serve.Proto.outcome <> "solved"
      || h.Owl_serve.Proto.workers_alive <> jobs
      || h.Owl_serve.Proto.degraded
      || h.Owl_serve.Proto.queue_waiting <> 0
      || (expect_lost && h.Owl_serve.Proto.workers_lost = 0)
    in
    if failed then begin
      Printf.eprintf
        "chaos: REGRESSION under plan %S (%d errors, %d divergent bindings, \
         recovery %s, %d/%d workers alive, %d lost, degraded %b, %d queued)\n"
        plan (Atomic.get errors) (Atomic.get divergent)
        post.Owl_serve.Proto.outcome h.Owl_serve.Proto.workers_alive jobs
        h.Owl_serve.Proto.workers_lost h.Owl_serve.Proto.degraded
        h.Owl_serve.Proto.queue_waiting;
      exit 1
    end;
    Report.record
      [ ("section", Report.str "chaos"); ("label", Report.str tag);
        ("plan", Report.str plan); ("requests", string_of_int n);
        ("faults_fired", string_of_int fired);
        ("client_errors", string_of_int (Atomic.get errors));
        ("client_retries", string_of_int (Atomic.get retried));
        ("divergent_bindings", string_of_int (Atomic.get divergent));
        ("workers_lost", string_of_int h.Owl_serve.Proto.workers_lost);
        ("shed", string_of_int h.Owl_serve.Proto.shed);
        ("cancelled", string_of_int h.Owl_serve.Proto.cancelled);
        ("timeouts", string_of_int h.Owl_serve.Proto.timeouts);
        ("degraded_seconds",
         Printf.sprintf "%.3f" h.Owl_serve.Proto.degraded_seconds);
        ("wall_seconds", Printf.sprintf "%.6f" wall) ]
  in
  List.iter run_plan
    [ ("none", "", false);
      ("worker_kill", "worker_kill@2,worker_kill@7,worker_kill@13", true);
      ("conn_drop", "conn_drop@3,conn_drop@11,conn_drop@19", false);
      ("frame_delay", "frame_delay@5,frame_delay@12", false);
      ("shed", "shed@1,shed@6,shed@14", false);
      ("mixed", "worker_kill@4,conn_drop@6,frame_delay@9,shed@2", true) ];
  print_endline "";
  print_endline
    "chaos: every plan drained with zero unrecovered errors and \
     bit-identical bindings"

(* {1 Smoke test (dune @bench-smoke alias)}

   A seconds-scale end-to-end exercise of the bench harness with sessions
   enabled — run in CI via [dune build @bench-smoke].  No JSON report: the
   alias runs inside dune's sandbox. *)

(* {1 SAT core profiles: baseline vs LBD retention vs inprocessing}

   The same synthesis problems under four SAT core configurations:
   the legacy activity-only solver (every modern pass off), LBD-tiered
   retention + rephasing alone, full inprocessing (subsumption,
   self-subsuming resolution, vivification) on top, and finally bounded
   variable elimination as well.  The single-cycle core's M-extension
   variant is the search-heavy workload where the passes engage (the
   base RV32I queries stay below the inprocessing interval); the
   monolithic RV32I rows show the unoptimized baseline query under each
   configuration.  For a fixed configuration, jobs=4 bindings must be
   bit-identical to jobs=1 (asserted); across configurations the passes
   may steer the search to a different — equally verified — model, so
   cross-config agreement is recorded but informational. *)

let sat_bench () =
  print_endline "";
  print_endline "SAT core configurations: legacy baseline vs LBD-tiered clause";
  print_endline "retention vs inprocessing (subsumption + vivification) vs";
  print_endline "bounded variable elimination, same synthesis problems.";
  print_endline "";
  let configs =
    [ ("baseline", Sat.conservative_config);
      ("lbd",
       { Sat.conservative_config with Sat.lbd_retention = true; rephase = true });
      ("inprocess", { Sat.aggressive_config with Sat.elim = false });
      ("inprocess+elim", Sat.aggressive_config) ]
  in
  Printf.printf "%-22s %-15s %8s %10s %7s %7s %7s %7s %7s\n" "Design" "Config"
    "wall(s)" "conflicts" "kept" "del" "subs" "strng" "elim";
  print_endline (String.make 98 '-');
  let run_config ~design ~problem ~mode ~jobs (tag, cfg) =
    let label =
      Printf.sprintf "%s %s j%d%s" design tag jobs
        (match mode with Synth.Engine.Monolithic -> " mono" | _ -> "")
    in
    let options =
      Synth.Engine.(
        default_options |> with_mode mode |> with_jobs jobs
        |> with_deadline (Some !deadline)
        |> with_sat_config cfg)
    in
    let outcome, dt =
      time (fun () -> Synth.Engine.synthesize ~options (problem ()))
    in
    let st, solved, outcome_str =
      match outcome with
      | Synth.Engine.Solved s -> (Some s.Synth.Engine.stats, Some s, "solved")
      | Synth.Engine.Timeout st -> (Some st, None, "timeout")
      | _ -> (None, None, "failed")
    in
    (match st with
    | Some st ->
        Printf.printf "%-22s %-15s %8.2f %10d %7d %7d %7d %7d %7d\n%!" design
          (tag ^ if outcome_str = "timeout" then "(T)" else "")
          dt st.Synth.Engine.conflicts st.Synth.Engine.sat_learnt_kept
          st.Synth.Engine.sat_learnt_deleted st.Synth.Engine.sat_subsumed
          st.Synth.Engine.sat_strengthened st.Synth.Engine.sat_eliminated
    | None -> Printf.printf "%-22s %-15s failed\n%!" design tag);
    Report.record_run ~section:"sat" ~label ~outcome:outcome_str ~wall:dt st;
    (solved, dt, st)
  in
  let ok = ref true in
  let same (a : Synth.Engine.solved) (b : Synth.Engine.solved) =
    a.Synth.Engine.per_instr = b.Synth.Engine.per_instr
    && a.Synth.Engine.shared = b.Synth.Engine.shared
  in
  let compare_design design problem =
    let rows =
      List.map
        (fun pc ->
          (fst pc,
           run_config ~design ~problem ~mode:Synth.Engine.Per_instruction
             ~jobs:1 pc))
        configs
    in
    (* jobs=4 under the heaviest configuration: scheduling must not
       change the bindings *)
    let s4, _, _ =
      run_config ~design ~problem ~mode:Synth.Engine.Per_instruction ~jobs:4
        (List.hd (List.rev configs))
    in
    match (List.assoc "baseline" rows, List.assoc "inprocess+elim" rows, s4)
    with
    | (Some sb, wb, Some stb), (Some se, wi, Some sti), Some s4 ->
        (* hard guarantee: for a fixed configuration the schedule never
           changes the bindings (jobs=4 vs jobs=1, both under
           inprocess+elim).  Across configurations the passes may steer
           the search to a different — equally verified — model, so
           cross-config agreement is reported but not asserted.  The
           headline compares the legacy baseline against the full
           inprocessing stack (subsumption + vivification +
           elimination). *)
        let schedule_identical = same se s4 in
        let config_identical =
          List.for_all
            (fun (_, (s, _, _)) ->
              match s with Some s -> same sb s | None -> false)
            rows
        in
        (* learned clauses retained at end of search: everything learned
           minus what the retention tiers and inprocessing pruned *)
        let retained (st : Synth.Engine.stats) =
          st.Synth.Engine.conflicts - st.Synth.Engine.sat_learnt_deleted
          - st.Synth.Engine.sat_subsumed
        in
        let faster = wi < wb in
        let leaner = retained sti < retained stb in
        Printf.printf
          "  %s: full inprocessing %.2fx wall vs baseline (%s), learnt \
           retained %d vs %d (%s), jobs=4 deterministic: %s, configs agree: \
           %s\n%!"
          design (wb /. wi)
          (if faster then "ok" else "slower")
          (retained sti) (retained stb)
          (if leaner then "ok" else "not leaner")
          (if schedule_identical then "ok" else "BUG")
          (if config_identical then "yes" else "no (all verified)");
        Report.record
          [ ("section", Report.str "sat");
            ("label", Report.str (design ^ " summary"));
            ("baseline_wall_seconds", Printf.sprintf "%.6f" wb);
            ("inprocess_wall_seconds", Printf.sprintf "%.6f" wi);
            ("baseline_learnt_retained", string_of_int (retained stb));
            ("inprocess_learnt_retained", string_of_int (retained sti));
            ("inprocess_faster", string_of_bool faster);
            ("inprocess_leaner", string_of_bool leaner);
            ("jobs4_deterministic", string_of_bool schedule_identical);
            ("bindings_identical_across_configs",
             string_of_bool config_identical) ];
        if not schedule_identical then ok := false
    | _ -> ok := false
  in
  compare_design "rv32-single RV32I"
    (fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I);
  compare_design "rv32-single RV32I+M"
    (fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I_M);
  (* the unoptimized monolithic query under the two extreme
     configurations; at the default deadline this is the paper's dagger
     row, so a timeout outcome with its conflict count is the datum *)
  List.iter
    (fun tag ->
      ignore
        (run_config ~design:"rv32-single RV32I"
           ~problem:(fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I)
           ~mode:Synth.Engine.Monolithic ~jobs:1
           (tag, List.assoc tag configs)))
    [ "baseline"; "inprocess+elim" ];
  print_endline "";
  if !ok then
    print_endline
      "sat profiles: jobs=4 bindings bit-identical to jobs=1 under every \
       configuration"
  else begin
    print_endline "sat profiles: REGRESSION (see rows above)";
    exit 1
  end

(* {1 Portfolio racing and cube-and-conquer (DESIGN.md section 15)}

   Two comparisons.  First, a solvable monolithic synthesis (alu) runs
   sequentially, racing, and cubed, to assert the determinism contract:
   the portfolio accelerates only the Unsat direction, so the hole
   bindings must be bit-identical across all three.  Second — the actual
   payoff — the monolithic ∀-verify query of the paper's dagger rows is
   attacked directly: synthesize the RV32I / RV32I+M reference
   per-instruction (fast), close the design, pose the one big
   "some instruction violates its contract" disjunction
   ([Engine.monolithic_violation]), and solve that single hard Unsat
   query sequentially, with a 4-racer diversified portfolio (periodic
   glue sharing), and by cube-and-conquer.  Racing inside the CEGIS
   loop would pay a full re-blast per racer per iteration, which is why
   the comparison lives at the query level: one query, one blast per
   racer (in parallel), diversified search from there. *)

let portfolio_bench () =
  print_endline "";
  print_endline "Portfolio: sequential vs 4-racer portfolio vs cube-and-conquer";
  print_endline "on the monolithic ∀-verify query (the query that defeats";
  Printf.printf "sequential solving; timeout = %.0fs wall clock)\n" !deadline;
  print_endline "";
  Printf.printf "%-26s %-12s %8s %10s %6s %8s %8s %6s\n" "Query" "Variant"
    "wall(s)" "conflicts" "races" "shr_out" "shr_in" "cubes";
  print_endline (String.make 92 '-');
  let jobs = 4 in
  let cube_vars = 5 in
  let ok = ref true and accelerated_anywhere = ref false in
  let win_counts_str (summary : Synth.Portfolio.summary) =
    String.concat " "
      (List.map
         (fun (i, n) -> Printf.sprintf "%d:%d" i n)
         summary.Synth.Portfolio.win_counts)
  in
  let summarize ~design ~wseq ~wrace ~wcube ~race_speedup ~cube_speedup
      ~(summary : Synth.Portfolio.summary) ~(tcube : Synth.Portfolio.summary)
      ~faster ~bindings_identical =
    if faster then accelerated_anywhere := true;
    let win_counts = win_counts_str summary in
    let races_won =
      List.fold_left (fun a (_, n) -> a + n) 0 summary.Synth.Portfolio.win_counts
    in
    Printf.printf
      "  %s: portfolio %.2fx, cubes %.2fx vs sequential (%s); wins [%s], \
       shared %d out / %d in, bindings %s\n%!"
      design race_speedup cube_speedup
      (if faster then "faster" else "not faster")
      win_counts summary.Synth.Portfolio.shared_out
      summary.Synth.Portfolio.shared_in bindings_identical;
    Report.record
      [ ("section", Report.str "portfolio");
        ("label", Report.str (design ^ " summary"));
        ("sequential_wall_seconds", Printf.sprintf "%.6f" wseq);
        ("portfolio_wall_seconds", Printf.sprintf "%.6f" wrace);
        ("cube_wall_seconds", Printf.sprintf "%.6f" wcube);
        ("portfolio_speedup", Printf.sprintf "%.4f" race_speedup);
        ("cube_speedup", Printf.sprintf "%.4f" cube_speedup);
        ("races", string_of_int summary.Synth.Portfolio.races);
        ("races_won", string_of_int races_won);
        ("win_counts", Report.str win_counts);
        ("shared_out", string_of_int summary.Synth.Portfolio.shared_out);
        ("shared_in", string_of_int summary.Synth.Portfolio.shared_in);
        ("shared_dropped",
         string_of_int summary.Synth.Portfolio.shared_dropped);
        ("cubes", string_of_int tcube.Synth.Portfolio.cubes);
        ("cubes_unsat", string_of_int tcube.Synth.Portfolio.cubes_unsat);
        ("accelerated", string_of_bool faster);
        ("bindings_identical", Report.str bindings_identical) ]
  in
  (* — the determinism contract on a solvable monolithic synthesis: all
     three variants must land on bit-identical hole bindings — *)
  let synth_variant ~design ~problem (tag, race) =
    let tally = Synth.Portfolio.create_tally () in
    let options =
      Synth.Engine.(
        default_options |> with_mode Monolithic |> with_jobs jobs
        |> with_deadline (Some !deadline)
        |> with_race race)
    in
    let outcome, dt =
      time (fun () ->
          Synth.Engine.synthesize ~options ~race_tally:tally (problem ()))
    in
    let st, solved, outcome_str =
      match outcome with
      | Synth.Engine.Solved s -> (Some s.Synth.Engine.stats, Some s, "solved")
      | Synth.Engine.Timeout st -> (Some st, None, "timeout")
      | _ -> (None, None, "failed")
    in
    let t = Synth.Portfolio.read_tally tally in
    (match st with
    | Some st ->
        Printf.printf "%-26s %-12s %8.2f %10d %6d %8d %8d %6d\n%!" design
          (tag ^ if outcome_str = "timeout" then "(T)" else "")
          dt st.Synth.Engine.conflicts t.Synth.Portfolio.races
          t.Synth.Portfolio.shared_out t.Synth.Portfolio.shared_in
          t.Synth.Portfolio.cubes
    | None -> Printf.printf "%-26s %-12s failed\n%!" design tag);
    Report.record_run ~section:"portfolio"
      ~label:(Printf.sprintf "%s %s" design tag)
      ~outcome:outcome_str ~wall:dt st;
    (solved, dt, t)
  in
  let same (a : Synth.Engine.solved) (b : Synth.Engine.solved) =
    a.Synth.Engine.per_instr = b.Synth.Engine.per_instr
    && a.Synth.Engine.shared = b.Synth.Engine.shared
  in
  let synth_design design problem =
    let variants =
      [ ("sequential", Synth.Portfolio.default);
        ("portfolio-4", Synth.Portfolio.(default |> with_racers 4));
        (Printf.sprintf "cube-%d" (1 lsl cube_vars),
         Synth.Portfolio.(default |> with_cube_vars cube_vars)) ]
    in
    let rows =
      List.map (fun v -> (fst v, synth_variant ~design ~problem v)) variants
    in
    let seq, wseq, _ = snd (List.nth rows 0) in
    let race, wrace, trace_ = snd (List.nth rows 1) in
    let cube, wcube, tcube = snd (List.nth rows 2) in
    let bindings_identical =
      match (seq, race, cube) with
      | None, _, _ | _, None, None -> "n/a"
      | Some s, r, c ->
          if
            (match r with Some r -> same s r | None -> true)
            && match c with Some c -> same s c | None -> true
          then "true"
          else "false"
    in
    if bindings_identical = "false" then ok := false;
    let speedup w solved =
      if solved = None && seq = None then 1.0 else wseq /. w
    in
    let faster =
      (race <> None && (seq = None || wrace < wseq))
      || (cube <> None && (seq = None || wcube < wseq))
    in
    summarize ~design ~wseq ~wrace ~wcube
      ~race_speedup:(speedup wrace race) ~cube_speedup:(speedup wcube cube)
      ~summary:trace_ ~tcube ~faster ~bindings_identical
  in
  (* — the payoff: the dagger rows' monolithic ∀-verify query, solved
     once per variant.  The reference control is synthesized
     per-instruction first (the tractable direction), then the closed
     design's "some instruction violates its contract" disjunction is
     posed sequentially, raced, and cubed. — *)
  let verify_design design isa =
    let problem = Designs.Riscv_single.problem isa in
    let vproblem =
      { problem with
        Synth.Engine.design = Designs.Riscv_single.reference_design isa }
    in
    let v = Synth.Engine.monolithic_violation vproblem in
    let strategy = Solver.Strategy.default in
        let cfg = Solver.Strategy.sat_config strategy in
        let run_query tag f =
          let tally = Synth.Portfolio.create_tally () in
          let o, dt = time (fun () -> f tally) in
          let st = Solver.stats_of o in
          let t = Synth.Portfolio.read_tally tally in
          let outcome_str =
            match o with
            | Solver.Unsat _ -> "unsat"
            | Solver.Sat _ -> "sat"
            | Solver.Unknown _ -> "timeout"
          in
          (* a Sat here means a racer or cube found a "counterexample" to
             a correct-by-construction design — a soundness bug *)
          if outcome_str = "sat" then ok := false;
          Printf.printf "%-26s %-12s %8.2f %10d %6d %8d %8d %6d\n%!" design
            (tag ^ if outcome_str = "timeout" then "(T)" else "")
            dt st.Solver.sat_conflicts t.Synth.Portfolio.races
            t.Synth.Portfolio.shared_out t.Synth.Portfolio.shared_in
            t.Synth.Portfolio.cubes;
          Report.record
            [ ("section", Report.str "portfolio");
              ("label", Report.str (Printf.sprintf "%s %s" design tag));
              ("outcome", Report.str outcome_str);
              ("wall_seconds", Printf.sprintf "%.6f" dt);
              ("sat_conflicts", string_of_int st.Solver.sat_conflicts);
              ("races", string_of_int t.Synth.Portfolio.races);
              ("race_shared_out",
               string_of_int t.Synth.Portfolio.shared_out);
              ("race_shared_in", string_of_int t.Synth.Portfolio.shared_in);
              ("cubes", string_of_int t.Synth.Portfolio.cubes);
              ("cubes_unsat", string_of_int t.Synth.Portfolio.cubes_unsat) ];
          (o, dt, t)
        in
        let absolute () = Unix.gettimeofday () +. !deadline in
        let oseq, wseq, _ =
          run_query "sequential" (fun _ ->
              Solver.check ~config:cfg ~deadline:(absolute ()) [ v ])
        in
        let orace, wrace, trace_ =
          run_query "portfolio-4" (fun tally ->
              Synth.Portfolio.check
                ~options:Synth.Portfolio.(default |> with_racers 4)
                ~tally ~deadline:(absolute ()) ~derive_sat:false ~jobs
                ~strategy [ v ])
        in
        let ocube, wcube, tcube =
          run_query (Printf.sprintf "cube-%d" (1 lsl cube_vars))
            (fun tally ->
              Synth.Portfolio.check
                ~options:Synth.Portfolio.(default |> with_cube_vars cube_vars)
                ~tally ~deadline:(absolute ()) ~derive_sat:false ~jobs
                ~strategy [ v ])
        in
        let refuted = function Solver.Unsat _ -> true | _ -> false in
        (* a timed-out sequential run's wall is the deadline, so a
           variant that refutes within it is strictly faster by
           construction *)
        let speedup w o =
          if (not (refuted o)) && not (refuted oseq) then 1.0 else wseq /. w
        in
        let faster =
          (refuted orace && ((not (refuted oseq)) || wrace < wseq))
          || (refuted ocube && ((not (refuted oseq)) || wcube < wseq))
        in
        summarize ~design ~wseq ~wrace ~wcube
          ~race_speedup:(speedup wrace orace)
          ~cube_speedup:(speedup wcube ocube) ~summary:trace_ ~tcube ~faster
          ~bindings_identical:"n/a"
  in
  synth_design "alu mono" (fun () -> Designs.Alu.problem ());
  verify_design "RV32I mono-verify" Isa.Rv32.RV32I;
  verify_design "RV32I+M mono-verify" Isa.Rv32.RV32I_M;
  print_endline "";
  if not !ok then begin
    print_endline "portfolio: BINDINGS REGRESSION (see rows above)";
    exit 1
  end;
  if not !accelerated_anywhere then begin
    print_endline
      "portfolio: REGRESSION — neither racing nor cubes beat sequential on \
       any monolithic row";
    exit 1
  end;
  print_endline
    "portfolio: racing/cubes strictly faster than sequential on at least \
     one monolithic row, bindings bit-identical wherever comparable"

let smoke () =
  let problem = Designs.Accumulator.problem () in
  let solve ~incremental =
    let options = Synth.Engine.(default_options |> with_incremental incremental) in
    match Synth.Engine.synthesize ~options problem with
    | Synth.Engine.Solved s -> s
    | _ ->
        prerr_endline "bench smoke: accumulator synthesis failed";
        exit 1
  in
  let inc = solve ~incremental:true in
  let fresh = solve ~incremental:false in
  let sti = inc.Synth.Engine.stats and stf = fresh.Synth.Engine.stats in
  Printf.printf
    "bench smoke: accumulator solved; %d rounds, %d queries, %d clauses \
     (sessions) vs %d clauses (fresh)\n"
    sti.Synth.Engine.iterations sti.Synth.Engine.queries
    sti.Synth.Engine.blasted_clauses stf.Synth.Engine.blasted_clauses;
  (* resilience counters ride along so the perf trajectory shows when the
     retry/validation machinery starts doing work on a clean run (all four
     must stay zero here: no faults, no budget, no deadline) *)
  Printf.printf
    "bench smoke: resilience counters: %d retried, %d degraded, %d \
     validation failures, %d task retries\n"
    sti.Synth.Engine.retried_queries sti.Synth.Engine.degraded_queries
    sti.Synth.Engine.validation_failures sti.Synth.Engine.task_retries;
  if
    sti.Synth.Engine.retried_queries <> 0
    || sti.Synth.Engine.degraded_queries <> 0
    || sti.Synth.Engine.validation_failures <> 0
    || sti.Synth.Engine.task_retries <> 0
  then begin
    prerr_endline "bench smoke: resilience machinery engaged on a clean run";
    exit 1
  end;
  if sti.Synth.Engine.blasted_clauses >= stf.Synth.Engine.blasted_clauses
  then begin
    prerr_endline "bench smoke: incremental mode did not blast fewer clauses";
    exit 1
  end;
  if
    inc.Synth.Engine.per_instr <> fresh.Synth.Engine.per_instr
    || inc.Synth.Engine.shared <> fresh.Synth.Engine.shared
  then begin
    (* identical bindings are not guaranteed in general, but on this tiny
       design a divergence means something structural changed — fail loud *)
    prerr_endline "bench smoke: accumulator bindings diverged between modes";
    exit 1
  end;
  (* Every SAT profile must reach the same hole bindings — the passes
     change how fast a model is found, never which model — and the
     jobs=4 schedule must agree with jobs=1 under the most aggressive
     profile. *)
  let solve_profile ~jobs profile =
    let options =
      Synth.Engine.(
        default_options |> with_jobs jobs |> with_sat_profile profile)
    in
    match Synth.Engine.synthesize ~options problem with
    | Synth.Engine.Solved s -> s
    | _ ->
        prerr_endline "bench smoke: profiled accumulator synthesis failed";
        exit 1
  in
  let base = solve_profile ~jobs:1 Sat.Conservative in
  let same (a : Synth.Engine.solved) (b : Synth.Engine.solved) =
    a.Synth.Engine.per_instr = b.Synth.Engine.per_instr
    && a.Synth.Engine.shared = b.Synth.Engine.shared
  in
  List.iter
    (fun (profile, jobs) ->
      if not (same base (solve_profile ~jobs profile)) then begin
        Printf.eprintf
          "bench smoke: bindings diverged under SAT profile %s (jobs=%d)\n"
          (Sat.profile_name profile) jobs;
        exit 1
      end)
    [ (Sat.Default, 1); (Sat.Aggressive, 1); (Sat.Conservative, 4);
      (Sat.Aggressive, 4) ];
  print_endline
    "bench smoke: hole bindings bit-identical across all SAT profiles and \
     schedules";
  (* One traced synthesis: the emitted Chrome trace must be valid JSON
     (checked with Owl_obs's own strict parser) with a non-empty
     traceEvents array. *)
  Obs.enable ();
  Obs.enable_metrics ();
  ignore (solve ~incremental:true);
  let trace = Obs.chrome_trace_string () in
  Obs.disable ();
  Obs.disable_metrics ();
  (match Json.parse trace with
  | doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.Arr (_ :: _ as evs)) ->
          Printf.printf "bench smoke: trace is valid JSON with %d events\n"
            (List.length evs)
      | _ ->
          prerr_endline "bench smoke: trace has no traceEvents";
          exit 1)
  | exception Json.Parse_error m ->
      prerr_endline ("bench smoke: trace is not valid JSON: " ^ m);
      exit 1);
  (* Null-sink overhead: with tracing and metrics off, a span is one
     atomic load plus a branch.  The bound is deliberately loose (it only
     catches an accidentally expensive disabled path, e.g. a lock or an
     allocation), so it holds on slow shared CI machines. *)
  let reps = 1_000_000 in
  let payload () = Sys.opaque_identity 2 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (payload ()))
  done;
  let bare = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (Obs.span "noop" payload))
  done;
  let spanned = Unix.gettimeofday () -. t0 in
  let per_call_ns = (spanned -. bare) *. 1e9 /. float_of_int reps in
  Printf.printf "bench smoke: disabled-span overhead %.1f ns/call\n"
    per_call_ns;
  if per_call_ns > 1000.0 then begin
    prerr_endline "bench smoke: null-sink overhead exceeds 1000 ns/call";
    exit 1
  end;
  (* Cross-run cache: a cold solve of the ALU machine (independent
     per-instruction holes, so the cacheable path runs) followed by a
     warm rerun against the same directory.  The warm run must hit, must
     issue fewer solver queries, and must reproduce the cold bindings
     bit for bit. *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "owl-smoke-cache.%d" (Unix.getpid ()))
  in
  let solve_cached () =
    let cache = Owl_cache.open_dir cache_dir in
    let options = Synth.Engine.(default_options |> with_cache (Some cache)) in
    match Synth.Engine.synthesize ~options (Designs.Alu.problem ()) with
    | Synth.Engine.Solved s -> (s, Owl_cache.counters cache)
    | _ ->
        prerr_endline "bench smoke: alu synthesis failed";
        exit 1
  in
  let cold, kc = solve_cached () in
  let warm, kw = solve_cached () in
  ignore (Owl_cache.clear (Owl_cache.open_dir cache_dir));
  List.iter
    (fun d -> try Unix.rmdir d with Unix.Unix_error _ -> ())
    [ Filename.concat cache_dir "r"; Filename.concat cache_dir "w";
      cache_dir ];
  Printf.printf
    "bench smoke: cache cold %d queries (%d writes), warm %d queries (%d \
     hits)\n"
    cold.Synth.Engine.stats.Synth.Engine.queries kc.Owl_cache.writes
    warm.Synth.Engine.stats.Synth.Engine.queries kw.Owl_cache.hits;
  if kw.Owl_cache.hits = 0 then begin
    prerr_endline "bench smoke: warm rerun produced no cache hits";
    exit 1
  end;
  if
    warm.Synth.Engine.stats.Synth.Engine.queries
    >= cold.Synth.Engine.stats.Synth.Engine.queries
  then begin
    prerr_endline "bench smoke: warm rerun did not issue fewer solver queries";
    exit 1
  end;
  if
    warm.Synth.Engine.per_instr <> cold.Synth.Engine.per_instr
    || warm.Synth.Engine.shared <> cold.Synth.Engine.shared
  then begin
    prerr_endline "bench smoke: warm bindings diverged from cold bindings";
    exit 1
  end;
  (* Miniature serve run: boot the daemon in process, push a small mixed
     batch through the wire protocol, and require hot-tier hits, zero
     protocol errors, and a clean drain — the seconds-scale version of
     the [serve] load section.  Run twice each with telemetry off and
     on: the telemetry-enabled daemon must stay within 5% wall (plus a
     small absolute floor for scheduler noise on a sub-second run) of
     the null-sink baseline, and a mid-run [metrics] request against it
     must come back with live gauges. *)
  let acc_verify =
    { problem with
      Synth.Engine.design = Designs.Accumulator.reference_design () }
  in
  let lookup kind _name =
    match kind with
    | `Synth -> Some problem
    | `Verify -> Some acc_verify
  in
  let serve_run = ref 0 in
  let serve_miniature ~telemetry () =
    incr serve_run;
    let sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "owl-smoke-serve.%d.%d.sock" (Unix.getpid ())
           !serve_run)
    in
    let addr = Owl_serve.Proto.Unix_path sock in
    let ready = Atomic.make false in
    let server =
      Thread.create
        (fun () ->
          Owl_serve.Server.run
            ~ready:(fun () -> Atomic.set ready true)
            {
              Owl_serve.Server.addr;
              jobs = 2;
              queue_depth = 32;
              hot_tier_size = 32;
              cache = None;
              server_name = "owl-smoke";
              telemetry;
              dump_dir = None;
            }
            ~lookup)
        ()
    in
    while not (Atomic.get ready) do
      Thread.delay 0.002
    done;
    let serve_errors = ref 0 and serve_hot = ref 0 in
    let gauges_live = ref (not telemetry) in
    let c = Owl_serve.Client.connect addr in
    let t0 = Unix.gettimeofday () in
    (try
       for seq = 0 to 19 do
         (* four distinct fingerprints per kind: 8 cold, 12 warm *)
         let options =
           Synth.Engine.(
             default_options |> with_max_iterations (300 + (seq mod 4)))
         in
         let hot =
           if seq mod 5 = 4 then
             (Owl_serve.Client.verify c ~design:"accumulator" options)
               .Owl_serve.Proto.v_hot
           else begin
             let r = Owl_serve.Client.synth c ~design:"accumulator" options in
             if r.Owl_serve.Proto.outcome <> "solved" then incr serve_errors;
             r.Owl_serve.Proto.hot
           end
         in
         if hot then incr serve_hot;
         (* scrape the live registry mid-batch: the gauges must be
            populated while the daemon is actually working *)
         if telemetry && seq = 10 then
           if
             List.exists
               (fun m -> m.Owl_serve.Proto.m_kind = "gauge")
               (Owl_serve.Client.metrics c)
           then gauges_live := true
       done
     with _ -> incr serve_errors);
    let wall = Unix.gettimeofday () -. t0 in
    let serve_stats = Owl_serve.Client.cache_stats c in
    Owl_serve.Client.shutdown c;
    Owl_serve.Client.close c;
    Thread.join server;
    let tier_hits =
      match serve_stats.Owl_serve.Proto.hot_tier with
      | Some h -> h.Owl_serve.Proto.hot_hits
      | None -> 0
    in
    Printf.printf
      "bench smoke: serve 20 requests (telemetry %s), %d hot answers (%d \
       tier hits), %d errors, %.3fs\n"
      (if telemetry then "on" else "off")
      !serve_hot tier_hits !serve_errors wall;
    if !serve_errors > 0 || !serve_hot = 0 || tier_hits = 0 then begin
      prerr_endline "bench smoke: serve run failed (errors or no hot-tier hits)";
      exit 1
    end;
    if not !gauges_live then begin
      prerr_endline "bench smoke: mid-run metrics scrape returned no gauges";
      exit 1
    end;
    if Sys.file_exists sock then begin
      prerr_endline "bench smoke: serve socket not unlinked after shutdown";
      exit 1
    end;
    wall
  in
  let min2 f = Float.min (f ()) (f ()) in
  let wall_off = min2 (serve_miniature ~telemetry:false) in
  let wall_on = min2 (serve_miniature ~telemetry:true) in
  Printf.printf
    "bench smoke: serve telemetry overhead %+.1f%% wall (off %.3fs, on %.3fs)\n"
    (100.0 *. ((wall_on /. wall_off) -. 1.0))
    wall_off wall_on;
  if wall_on > (wall_off *. 1.05) +. 0.05 then begin
    prerr_endline "bench smoke: telemetry-enabled serve exceeded the 5% budget";
    exit 1
  end;
  print_endline "bench smoke: ok"

(* {1 Micro-benchmarks (Bechamel)} *)

let micro () =
  print_endline "";
  print_endline "Micro-benchmarks (Bechamel; one representative workload per table)";
  let open Bechamel in
  let bv_a = Bitvec.of_string "128'xdeadbeefcafebabe0123456789abcdef" in
  let bv_b = Bitvec.of_string "128'x0f1e2d3c4b5a69788796a5b4c3d2e1f0" in
  let accumulator_problem = Designs.Accumulator.problem () in
  let tests =
    [ Test.make ~name:"bitvec-mul-128" (Staged.stage (fun () -> Bitvec.mul bv_a bv_b));
      Test.make ~name:"bitvec-clmul-128"
        (Staged.stage (fun () -> Bitvec.clmul bv_a bv_b));
      Test.make ~name:"term-build-adder"
        (Staged.stage (fun () ->
             let x = Term.var "mb_x" 32 and y = Term.var "mb_y" 32 in
             Term.eq (Term.add x y) (Term.add y x)));
      (* table1 representative: one full synthesis of the Fig. 3 machine *)
      Test.make ~name:"table1-accumulator-synthesis"
        (Staged.stage (fun () ->
             match Synth.Engine.synthesize accumulator_problem with
             | Synth.Engine.Solved _ -> ()
             | _ -> failwith "accumulator synthesis failed"));
      (* table2 representative: netlist compilation of the ALU machine *)
      Test.make ~name:"table2-netlist-alu"
        (Staged.stage (fun () ->
             ignore
               (Netlist.of_design ~optimize:true (Designs.Alu.reference_design ()))));
      (* table3 representative: one simulated core cycle *)
      Test.make ~name:"table3-core-cycle"
        (Staged.stage
           (let design = Designs.Crypto_core.reference_design () in
            let st =
              Designs.Testbench.load_core design
                ~program:[ Bitvec.of_int ~width:32 0x13 ]
                ~dmem_init:[]
            in
            fun () -> ignore (Oyster.Interp.step st)))
    ]
  in
  List.iter
    (fun t ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) () in
      let results = Benchmark.all cfg instances t in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let a = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ v ] -> Printf.printf "%-32s %12.0f ns/run\n%!" name v
          | _ -> Printf.printf "%-32s (no estimate)\n%!" name)
        a)
    tests

(* {1 Driver} *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter_map
      (fun a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--deadline" ->
            deadline :=
              float_of_string (String.sub a (i + 1) (String.length a - i - 1));
            None
        | _ -> Some a)
      args
  in
  let sections_tbl =
    [ ("table1", table1); ("table2", table2); ("table3", table3);
      ("ablation", ablation); ("parallel", parallel);
      ("incremental", incremental); ("cache", cache_bench);
      ("serve", serve_bench); ("chaos", chaos); ("sat", sat_bench);
      ("portfolio", portfolio_bench); ("micro", micro) ]
  in
  let run_sections names =
    (* histogram/counter collection across every section; the summaries
       land in the report's "metrics" array *)
    Obs.enable_metrics ();
    List.iter
      (fun name ->
        let (), dt = time (List.assoc name sections_tbl) in
        Report.record_section name dt)
      names;
    Report.write ()
  in
  match args with
  | [] | [ "all" ] ->
      run_sections
        [ "table1"; "table2"; "table3"; "ablation"; "parallel";
          "incremental"; "cache"; "serve"; "chaos"; "sat"; "portfolio" ]
  | [ "smoke" ] -> smoke ()
  | (_ :: _ as names) when List.for_all (fun n -> List.mem_assoc n sections_tbl) names ->
      run_sections names
  | _ ->
      prerr_endline
        "usage: main.exe \
         [all|table1|table2|table3|ablation|parallel|incremental|cache|serve|\
         chaos|sat|portfolio|micro|smoke] [--deadline=SECONDS]";
      exit 1
