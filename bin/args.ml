(* Shared command-line vocabulary for the owl driver.

   Several subcommands (synth, verify) accept the same engine-tuning,
   fault-injection, observability, and cache flags.  Each flag — and its
   environment-variable fallback, where one exists — is declared exactly
   once here; the subcommands compose the [Term]s and call the
   corresponding [install_*]/[apply_*] helper.  The precedence rule is
   uniform: explicit flag beats environment variable beats default. *)

open Cmdliner

(* {1 Engine tuning} *)

let jobs =
  let doc =
    "Worker domains for the independent per-instruction solver loops \
     (1 = serial; shared holes force the serial joint path regardless)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let check_jobs jobs =
  if jobs < 1 then begin
    prerr_endline "owl: --jobs must be >= 1";
    exit 1
  end

let no_incremental =
  let doc =
    "Use a fresh solver for every query instead of reusing incremental \
     solver sessions (SAT state, blasting cache, learned clauses) across \
     CEGIS iterations.  Escape hatch for debugging and A/B timing."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let default_recovery =
  Synth.Engine.default_options.Synth.Engine.recovery

let retries =
  let doc =
    "Extra attempts per solver query (and per crashed worker task) before \
     giving up: Unknown outcomes retry with geometrically escalated \
     conflict budgets and deadline slices, the final attempt on a fresh \
     one-shot solver."
  in
  Arg.(value & opt int default_recovery.Synth.Engine.Recovery.retries
       & info [ "retries" ] ~docv:"K" ~doc)

let escalation_factor =
  let doc = "Geometric budget/time growth per retry attempt." in
  Arg.(value
       & opt int default_recovery.Synth.Engine.Recovery.escalation_factor
       & info [ "escalation-factor" ] ~docv:"F" ~doc)

let validate_models =
  let doc =
    "Cross-check every satisfiable solver model by concrete evaluation of \
     the asserted formulas before trusting it; failed checks retry and \
     fall back to a fresh solver."
  in
  Arg.(value & flag & info [ "validate-models" ] ~doc)

(* {1 Solver strategy}

   The first-class vocabulary is [Solver.Strategy]: profile + restart
   schedule + branching seed + phase policy, resolved by the [strategy]
   term below.  [--sat-profile NAME] selects the pass profile
   (OWL_SAT_PROFILE is the flagless equivalent; the flag wins) and the
   per-pass [--no-sat-*] escape hatches subtract individual passes —
   both kept as thin shims over Strategy for compatibility.  The newer
   [--sat-restart]/[--sat-seed]/[--sat-phase] flags set the
   diversification fields directly. *)

let sat_profile =
  let doc =
    "SAT core pass profile: 'default' (LBD-tiered clause retention, \
     best-phase rephasing, subsumption and vivification between \
     restarts), 'aggressive' (additionally bounded variable elimination, \
     shorter inprocessing interval), or 'conservative' (all passes off — \
     the legacy activity-only solver).  Also read from the \
     OWL_SAT_PROFILE environment variable; the flag wins."
  in
  Arg.(value & opt (some string) None
       & info [ "sat-profile" ] ~docv:"PROFILE" ~doc)

let no_sat_lbd =
  let doc = "Disable LBD-tiered learned-clause retention (fall back to \
             activity-ordered reduction)." in
  Arg.(value & flag & info [ "no-sat-lbd" ] ~doc)

let no_sat_rephase =
  let doc = "Disable best-phase rephasing on restarts." in
  Arg.(value & flag & info [ "no-sat-rephase" ] ~doc)

let no_sat_subsume =
  let doc = "Disable inprocessing subsumption and self-subsuming \
             resolution." in
  Arg.(value & flag & info [ "no-sat-subsume" ] ~doc)

let no_sat_vivify =
  let doc = "Disable inprocessing clause vivification." in
  Arg.(value & flag & info [ "no-sat-vivify" ] ~doc)

let no_sat_elim =
  let doc = "Disable bounded variable elimination (only on under the \
             'aggressive' profile to begin with)." in
  Arg.(value & flag & info [ "no-sat-elim" ] ~doc)

(* Resolve flag/env/default precedence into a [Sat.config], then
   subtract the per-pass escape hatches.  Unknown profile names are
   reported and fatal, matching the fault-plan and cache behavior. *)
let resolve_sat_config ~sat_profile ~no_sat_lbd ~no_sat_rephase
    ~no_sat_subsume ~no_sat_vivify ~no_sat_elim =
  let name =
    match sat_profile with
    | Some _ -> sat_profile
    | None -> Sys.getenv_opt "OWL_SAT_PROFILE"
  in
  let base =
    match name with
    | None -> Solver.Strategy.sat_config Solver.Strategy.default
    | Some s -> (
        match Sat.profile_of_string (String.lowercase_ascii s) with
        | Some p -> Sat.config_of_profile p
        | None ->
            Printf.eprintf
              "owl: unknown SAT profile %S (expected default, aggressive, \
               or conservative)\n" s;
            exit 1)
  in
  {
    base with
    Sat.lbd_retention = base.Sat.lbd_retention && not no_sat_lbd;
    rephase = base.Sat.rephase && not no_sat_rephase;
    subsume = base.Sat.subsume && not no_sat_subsume;
    vivify = base.Sat.vivify && not no_sat_vivify;
    elim = base.Sat.elim && not no_sat_elim;
  }

(* The six flags collapse into a single resolved [Sat.config] term, so
   subcommands add one [$ Args.sat_config] instead of six.  Deprecated:
   new call sites should take [Args.strategy] instead. *)
let sat_config =
  let combine sat_profile no_sat_lbd no_sat_rephase no_sat_subsume
      no_sat_vivify no_sat_elim =
    resolve_sat_config ~sat_profile ~no_sat_lbd ~no_sat_rephase
      ~no_sat_subsume ~no_sat_vivify ~no_sat_elim
  in
  Term.(const combine $ sat_profile $ no_sat_lbd $ no_sat_rephase
        $ no_sat_subsume $ no_sat_vivify $ no_sat_elim)

let sat_restart =
  let doc =
    "Restart schedule: 'luby:N' (Luby staircase with unit run N; the \
     default is luby:100) or 'geometric:N:F' (first interval N, growth \
     factor F >= 1.0)."
  in
  Arg.(value & opt (some string) None
       & info [ "sat-restart" ] ~docv:"SCHED" ~doc)

let sat_seed =
  let doc =
    "Branching seed: 0 (the default) is the pure VSIDS tie-break; a \
     nonzero seed deterministically perturbs fresh variables' initial \
     activity, diversifying the early decision order."
  in
  Arg.(value & opt (some int) None & info [ "sat-seed" ] ~docv:"N" ~doc)

let sat_phase =
  let doc =
    "Initial decision polarity for fresh variables: 'neg' (the default), \
     'pos', or 'rand' (deterministic per-variable, seeded by --sat-seed)."
  in
  Arg.(value & opt (some string) None
       & info [ "sat-phase" ] ~docv:"POLICY" ~doc)

(* The full strategy: the legacy profile/pass flags resolve to a config
   which Strategy adopts, then the diversification flags override its
   restart/seed/phase fields. *)
let strategy =
  let combine cfg restart seed phase =
    let t = Solver.Strategy.of_config cfg in
    let t =
      match restart with
      | None -> t
      | Some s -> (
          match Solver.Strategy.restart_of_string s with
          | Some r -> Solver.Strategy.with_restart r t
          | None ->
              Printf.eprintf
                "owl: bad --sat-restart %S (expected luby:N or \
                 geometric:N:F with N >= 1, F >= 1.0)\n" s;
              exit 1)
    in
    let t =
      match seed with
      | None -> t
      | Some n when n >= 0 -> Solver.Strategy.with_seed n t
      | Some n ->
          Printf.eprintf "owl: --sat-seed must be >= 0 (got %d)\n" n;
          exit 1
    in
    match phase with
    | None -> t
    | Some s -> (
        match Solver.Strategy.phase_of_string s with
        | Some p -> Solver.Strategy.with_phase p t
        | None ->
            Printf.eprintf
              "owl: bad --sat-phase %S (expected neg, pos, or rand)\n" s;
            exit 1)
  in
  Term.(const combine $ sat_config $ sat_restart $ sat_seed $ sat_phase)

(* {1 Portfolio racing / cube-and-conquer} *)

let portfolio =
  let doc =
    "Race $(docv) diversified solver strategies (restart schedules, \
     phases, seeds, inprocessing profiles) on each hard verification \
     query across the worker pool, sharing learned glue clauses between \
     racers; first finisher wins.  1 (the default) disables racing.  \
     Only the refutation direction is raced, so bindings stay \
     bit-identical to sequential runs."
  in
  Arg.(value & opt int 1 & info [ "portfolio" ] ~docv:"N" ~doc)

let cube_vars =
  let doc =
    "Split each hard verification query into 2^$(docv) cubes over the \
     highest-occurrence SAT variables and fan them across the worker \
     pool as assumptions (cube-and-conquer); the query is refuted iff \
     every cube is.  0 (the default) disables splitting; takes \
     precedence over --portfolio when both are set."
  in
  Arg.(value & opt int 0 & info [ "cube-vars" ] ~docv:"K" ~doc)

let race =
  let combine portfolio cube_vars =
    let check label f v o =
      match f v o with
      | o -> o
      | exception Invalid_argument _ ->
          Printf.eprintf "owl: bad %s value %d\n" label v;
          exit 1
    in
    Synth.Portfolio.default
    |> check "--portfolio" Synth.Portfolio.with_racers portfolio
    |> check "--cube-vars" Synth.Portfolio.with_cube_vars cube_vars
  in
  Term.(const combine $ portfolio $ cube_vars)

(* {1 Fault injection} *)

let fault_plan =
  let doc =
    "Deterministic fault plan for resilience testing, e.g. \
     'unknown@3,corrupt@5,crash@1,seed=7' (also read from the \
     OWL_FAULT_PLAN environment variable; the flag wins)."
  in
  Arg.(value & opt (some string) None
       & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

let install_fault_plan = function
  | Some plan -> (
      match Fault.parse plan with
      | p -> Fault.install p
      | exception Fault.Parse_error m ->
          Printf.eprintf "owl: %s\n" m;
          exit 1)
  | None -> (
      match Fault.install_from_env () with
      | (_ : bool) -> ()
      | exception Fault.Parse_error m ->
          Printf.eprintf "owl: OWL_FAULT_PLAN: %s\n" m;
          exit 1)

(* {1 Observability}

   [--trace FILE] records spans across the solver, CEGIS engine, and
   worker pool and writes Chrome trace-event JSON (open in chrome://tracing
   or https://ui.perfetto.dev); the OWL_TRACE environment variable is the
   flagless equivalent, mirroring OWL_FAULT_PLAN (the flag wins).
   [--metrics] prints the counter/histogram summary table.  Both write
   through [at_exit] so the timeout and error exit paths still report. *)

let trace =
  let doc =
    "Record a trace of solver, CEGIS, and worker-pool activity and write \
     it to $(docv) as Chrome trace-event JSON (viewable in chrome://tracing \
     or Perfetto).  Also read from the OWL_TRACE environment variable; the \
     flag wins.  Implies metrics collection."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics =
  let doc =
    "Collect counters and latency/size histograms across the run and print \
     a summary table on exit."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let install_observability ~trace ~metrics =
  let trace =
    match trace with Some _ -> trace | None -> Sys.getenv_opt "OWL_TRACE"
  in
  if metrics then begin
    Obs.enable_metrics ();
    at_exit (fun () -> print_string (Obs.summary_table ()))
  end;
  match trace with
  | None -> ()
  | Some file ->
      Obs.enable ();
      Obs.enable_metrics ();
      at_exit (fun () ->
          let events = List.length (Obs.events ()) in
          let oc = open_out file in
          Obs.write_chrome_trace oc;
          close_out oc;
          Printf.eprintf "trace: %d events written to %s%s\n%!" events file
            (match Obs.dropped () with
            | 0 -> ""
            | d -> Printf.sprintf " (%d dropped)" d))

(* {1 Cross-run synthesis cache}

   [--cache-dir DIR] enables the content-addressed cache rooted at DIR;
   OWL_CACHE_DIR is the flagless equivalent (the flag wins) and
   [--no-cache] forces caching off even when the environment sets a
   directory.  There is deliberately no on-by-default directory: a cache
   the user did not ask for is a surprising pile of files. *)

let default_cache_dir = ".owl-cache"

let cache_dir =
  let doc =
    "Enable the cross-run synthesis cache rooted at $(docv): solved \
     per-instruction problems are fingerprinted and their hole bindings \
     reused (after re-validation) on later runs; near-miss problems \
     warm-start from accumulated counterexamples and learned clauses.  \
     Also read from the OWL_CACHE_DIR environment variable; the flag \
     wins.  The conventional directory is '.owl-cache'."
  in
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache =
  let doc =
    "Disable the synthesis cache even when OWL_CACHE_DIR is set."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

(* Resolve the flag/env/default precedence into an open handle (or
   None).  Open failures are reported and fatal: the user asked for a
   cache by naming a directory, so silently running uncached would be a
   lie. *)
let open_cache ~cache_dir ~no_cache =
  let dir =
    match cache_dir with
    | Some _ -> cache_dir
    | None -> Sys.getenv_opt "OWL_CACHE_DIR"
  in
  match dir with
  | Some d when not no_cache -> (
      match Owl_cache.open_dir d with
      | c -> Some c
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "owl: cannot open cache directory %s: %s\n" d
            (Unix.error_message e);
          exit 1)
  | _ -> None

(* {1 Serving}

   [owl serve] and [owl client] share the address vocabulary:
   [--addr ADDR] beats the OWL_ADDR environment variable beats the
   conventional socket under the system temp directory.  Accepted forms
   are [unix:PATH], [tcp:HOST:PORT], and a bare path (implying unix:). *)

let default_addr () =
  "unix:" ^ Filename.concat (Filename.get_temp_dir_name ()) "owl-serve.sock"

let addr =
  let doc =
    "Server address: 'unix:PATH', 'tcp:HOST:PORT', or a bare socket path.  \
     Also read from the OWL_ADDR environment variable; the flag wins.  \
     Defaults to 'unix:' + owl-serve.sock under the system temp directory."
  in
  Arg.(value & opt (some string) None & info [ "addr" ] ~docv:"ADDR" ~doc)

let resolve_addr addr =
  let s =
    match addr with
    | Some s -> s
    | None -> (
        match Sys.getenv_opt "OWL_ADDR" with
        | Some s -> s
        | None -> default_addr ())
  in
  match Owl_serve.Proto.addr_of_string s with
  | Ok a -> a
  | Error m ->
      Printf.eprintf "owl: bad address %S: %s\n" s m;
      exit 1

let queue_depth =
  let doc =
    "Admission-control bound: how many requests may wait in the server's \
     queue beyond those an idle worker takes immediately.  Requests past \
     the bound are answered with a busy reply instead of queueing."
  in
  Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc)

let hot_tier_size =
  let doc =
    "Capacity of the server's in-process LRU hot tier (finished results \
     keyed by request fingerprint); repeat requests are answered from it \
     without touching a solver or the disk cache.  0 disables the tier."
  in
  Arg.(value & opt int 256 & info [ "hot-tier-size" ] ~docv:"N" ~doc)

let no_telemetry =
  let doc =
    "Disable the daemon's live telemetry: the metric registry (counters, \
     gauges, sliding latency windows — served by `owl client metrics' and \
     `owl top') and the always-on flight recorder (served by `owl client \
     dump-trace').  Both revert to null sinks, the measured-overhead \
     baseline."
  in
  Arg.(value & flag & info [ "no-telemetry" ] ~doc)

let dump_dir =
  let doc =
    "Directory for automatic flight-recorder dumps: when a worker domain \
     is lost or the daemon enters degraded mode, the recorder's recent \
     spans are written there as owl-flight-*.json Chrome-trace files \
     (created if missing).  Without this flag automatic dumps are off; \
     `owl client dump-trace' works either way."
  in
  Arg.(value & opt (some string) None & info [ "dump-dir" ] ~docv:"DIR" ~doc)

(* Client-side retry: [--connect-retries]/[--backoff-ms] with
   OWL_CLIENT_RETRIES/OWL_BACKOFF_MS as the flagless equivalents (the
   flag wins).  Distinct from [--retries], which tunes the engine's
   solver-recovery ladder on the server. *)

let connect_retries =
  let doc =
    "Extra client attempts when the daemon answers busy, reports a lost \
     worker, or the connection fails transiently; each retry reconnects \
     after jittered exponential backoff.  Also read from the \
     OWL_CLIENT_RETRIES environment variable; the flag wins."
  in
  Arg.(value & opt (some int) None
       & info [ "connect-retries" ] ~docv:"K" ~doc)

let backoff_ms =
  let doc =
    "Base client retry backoff in milliseconds; it doubles per attempt \
     and is jittered into the rung's upper half.  Also read from the \
     OWL_BACKOFF_MS environment variable; the flag wins."
  in
  Arg.(value & opt (some int) None & info [ "backoff-ms" ] ~docv:"MS" ~doc)

let resolve_client_retry ~connect_retries ~backoff_ms =
  let env name =
    match Sys.getenv_opt name with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> Some n
        | None ->
            Printf.eprintf "owl: %s: %S is not an integer\n" name s;
            exit 1)
  in
  let pick flag name default =
    match flag with
    | Some n -> n
    | None -> ( match env name with Some n -> n | None -> default)
  in
  let retries = pick connect_retries "OWL_CLIENT_RETRIES" 0 in
  let backoff = pick backoff_ms "OWL_BACKOFF_MS" 100 in
  if retries < 0 then begin
    prerr_endline "owl: --connect-retries must be >= 0";
    exit 1
  end;
  if backoff < 0 then begin
    prerr_endline "owl: --backoff-ms must be >= 0";
    exit 1
  end;
  (retries, backoff)

let check_serve ~queue_depth ~hot_tier_size =
  if queue_depth < 0 then begin
    prerr_endline "owl: --queue-depth must be >= 0";
    exit 1
  end;
  if hot_tier_size < 0 then begin
    prerr_endline "owl: --hot-tier-size must be >= 0";
    exit 1
  end

let report_cache = function
  | None -> ()
  | Some c ->
      let k = Owl_cache.counters c in
      Printf.printf "cache: %d hits, %d misses, %d stale, %d writes (%s)\n"
        k.Owl_cache.hits k.Owl_cache.misses k.Owl_cache.stale
        k.Owl_cache.writes (Owl_cache.dir c)
