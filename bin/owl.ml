(* owl — the command-line driver for the control logic synthesis toolchain.

     owl list                         show the bundled case studies
     owl print -d <design>           print a sketch as textual Oyster
     owl synth -d <design> [...]     synthesize control logic
     owl check <file.oyster>         parse + typecheck a textual design
     owl netlist <file.oyster>       gate counts for a hole-free design
     owl sim <file.oyster> -n N      simulate N cycles (inputs forced to 0) *)

open Cmdliner

(* {1 The case-study registry} *)

type entry = {
  description : string;
  problem : unit -> Synth.Engine.problem;
  reference : (unit -> Oyster.Ast.design) option;
}

let registry : (string * entry) list =
  [ ("accumulator",
     { description = "FSM accumulator machine (paper Fig. 3)";
       problem = Designs.Accumulator.problem;
       reference = Some Designs.Accumulator.reference_design });
    ("alu",
     { description = "three-stage pipelined ALU machine (paper Fig. 2)";
       problem = Designs.Alu.problem;
       reference = Some Designs.Alu.reference_design });
    ("rv32-single",
     { description = "single-cycle RV32I core (paper 4.1.1)";
       problem = (fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I);
       reference = Some (fun () -> Designs.Riscv_single.reference_design Isa.Rv32.RV32I) });
    ("rv32-single-zbkb",
     { description = "single-cycle RV32I+Zbkb core";
       problem = (fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I_Zbkb);
       reference =
         Some (fun () -> Designs.Riscv_single.reference_design Isa.Rv32.RV32I_Zbkb) });
    ("rv32-single-m",
     { description = "single-cycle RV32I+M core (multiply/divide; beyond the paper)";
       problem = (fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I_M);
       reference =
         Some (fun () -> Designs.Riscv_single.reference_design Isa.Rv32.RV32I_M) });
    ("rv32-single-zbkc",
     { description = "single-cycle RV32I+Zbkb+Zbkc core";
       problem = (fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I_Zbkc);
       reference =
         Some (fun () -> Designs.Riscv_single.reference_design Isa.Rv32.RV32I_Zbkc) });
    ("rv32-two-stage",
     { description = "two-stage pipelined RV32I core (paper 4.1.2)";
       problem = (fun () -> Designs.Riscv_two_stage.problem Isa.Rv32.RV32I);
       reference =
         Some (fun () -> Designs.Riscv_two_stage.reference_design Isa.Rv32.RV32I) });
    ("crypto-core",
     { description = "three-stage constant-time cryptography core (paper 4.2)";
       problem = Designs.Crypto_core.problem;
       reference = Some Designs.Crypto_core.reference_design });
    ("aes",
     { description = "AES-128 hardware accelerator (paper 4.3)";
       problem = Designs.Aes.problem;
       reference = Some Designs.Aes.reference_design });
    ("gcd",
     { description = "GCD accelerator (FSM with data-dependent decode)";
       problem = Designs.Gcd.problem;
       reference = Some Designs.Gcd.reference_design })
  ]

let lookup name =
  match List.assoc_opt name registry with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown design %S; try `owl list'" name)

(* {1 Commands} *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, e) -> Printf.printf "%-18s %s\n" name e.description)
      registry
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled case-study designs")
    Term.(const run $ const ())

let design_arg =
  let doc = "Case-study design name (see `owl list')." in
  Arg.(required & opt (some string) None & info [ "d"; "design" ] ~docv:"NAME" ~doc)

let print_cmd =
  let reference =
    Arg.(value & flag & info [ "reference" ] ~doc:"Print the hand-written reference design instead of the sketch.")
  in
  let run name reference =
    match lookup name with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok e ->
        let d =
          if reference then
            match e.reference with
            | Some f -> f ()
            | None ->
                prerr_endline "no reference design registered";
                exit 1
          else (e.problem ()).Synth.Engine.design
        in
        print_string (Oyster.Printer.design_to_string d)
  in
  Cmd.v (Cmd.info "print" ~doc:"Print a design as textual Oyster IR")
    Term.(const run $ design_arg $ reference)

(* The engine-tuning, fault-plan, observability, and cache flags are
   shared between subcommands and declared once in {!Args}. *)

(* every synthesis-layer failure (engine, union, minimizer) shares one
   structured exception; report it uniformly instead of crashing *)
let or_engine_error f =
  try f ()
  with Synth.Engine.Engine_error m ->
    Printf.eprintf "owl: synthesis error: %s\n" m;
    exit 6

(* Per-racer wins and sharing volumes when --portfolio/--cube-vars ran;
   printed via [at_exit] so the timeout exit path reports too. *)
let report_race_tally tally =
  let s = Synth.Portfolio.read_tally tally in
  if s.Synth.Portfolio.races > 0 then begin
    Printf.printf
      "portfolio: %d races (%d unsat, %d sat, %d unknown), %d clauses \
       shared out, %d imported\n"
      s.Synth.Portfolio.races s.Synth.Portfolio.race_unsat
      s.Synth.Portfolio.race_sat s.Synth.Portfolio.race_unknown
      s.Synth.Portfolio.shared_out s.Synth.Portfolio.shared_in;
    List.iter
      (fun (i, n) -> Printf.printf "  racer %d: %d wins\n" i n)
      s.Synth.Portfolio.win_counts
  end;
  if s.Synth.Portfolio.cube_calls > 0 then
    Printf.printf "cubes: %d queries split into %d cubes (%d unsat, %d sat)\n"
      s.Synth.Portfolio.cube_calls s.Synth.Portfolio.cubes
      s.Synth.Portfolio.cubes_unsat s.Synth.Portfolio.cubes_sat

let synth_cmd =
  let monolithic =
    Arg.(value & flag
         & info [ "monolithic" ]
             ~doc:"Disable the per-instruction optimization (paper 3.3.1).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock timeout.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the completed design (Oyster text) to $(docv).")
  in
  let pyrtl =
    Arg.(value & flag
         & info [ "pyrtl" ] ~doc:"Print the generated control logic PyRTL-style (paper Fig. 7).")
  in
  let run name monolithic jobs deadline output pyrtl no_incremental retries
      escalation_factor validate_models strategy race cache_dir no_cache
      fault_plan trace metrics =
    Args.check_jobs jobs;
    Args.install_fault_plan fault_plan;
    Args.install_observability ~trace ~metrics;
    match lookup name with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok e -> (
        let cache = Args.open_cache ~cache_dir ~no_cache in
        if cache <> None then
          (* [at_exit] so the timeout/unrealizable exit paths report too *)
          at_exit (fun () -> Args.report_cache cache);
        let options =
          try
            Synth.Engine.(
              default_options
              |> with_mode (if monolithic then Monolithic else Per_instruction)
              |> with_jobs jobs
              |> with_deadline deadline
              |> with_incremental (not no_incremental)
              |> with_retries retries
              |> with_escalation_factor escalation_factor
              |> with_validate_models validate_models
              |> with_strategy strategy
              |> with_race race
              |> with_cache cache)
          with Invalid_argument m ->
            Printf.eprintf "owl: %s\n" m;
            exit 1
        in
        let race_tally = Synth.Portfolio.create_tally () in
        if Synth.Portfolio.enabled race then
          at_exit (fun () -> report_race_tally race_tally);
        match
          or_engine_error (fun () ->
              Synth.Engine.synthesize ~options ~race_tally (e.problem ()))
        with
        | Synth.Engine.Solved s ->
            let st = s.Synth.Engine.stats in
            Printf.printf
              "solved in %.2fs: %d CEGIS rounds, %d solver queries, %d conflicts\n"
              st.Synth.Engine.wall_seconds st.Synth.Engine.iterations
              st.Synth.Engine.queries st.Synth.Engine.conflicts;
            (* the full statistics record, resilience tallies included —
               the bench JSON is not the only place these are visible *)
            let row name value = Printf.printf "  %-22s %d\n" name value in
            row "iterations" st.Synth.Engine.iterations;
            row "queries" st.Synth.Engine.queries;
            row "conflicts" st.Synth.Engine.conflicts;
            row "blasted vars" st.Synth.Engine.blasted_vars;
            row "blasted clauses" st.Synth.Engine.blasted_clauses;
            row "trivial unsats" st.Synth.Engine.trivial_unsats;
            row "retried queries" st.Synth.Engine.retried_queries;
            row "degraded queries" st.Synth.Engine.degraded_queries;
            row "validation failures" st.Synth.Engine.validation_failures;
            row "task retries" st.Synth.Engine.task_retries;
            row "sat restarts" st.Synth.Engine.sat_restarts;
            row "sat learnt kept" st.Synth.Engine.sat_learnt_kept;
            row "sat learnt deleted" st.Synth.Engine.sat_learnt_deleted;
            row "sat subsumed" st.Synth.Engine.sat_subsumed;
            row "sat strengthened" st.Synth.Engine.sat_strengthened;
            row "sat vivified lits" st.Synth.Engine.sat_vivified;
            row "sat eliminated vars" st.Synth.Engine.sat_eliminated;
            row "sat rephases" st.Synth.Engine.sat_rephases;
            row "races" st.Synth.Engine.races;
            row "race unsat" st.Synth.Engine.race_unsat;
            row "race shared out" st.Synth.Engine.race_shared_out;
            row "race shared in" st.Synth.Engine.race_shared_in;
            row "cubes" st.Synth.Engine.cubes;
            row "cubes unsat" st.Synth.Engine.cubes_unsat;
            Printf.printf "  %-22s %.2f\n" "wall seconds"
              st.Synth.Engine.wall_seconds;
            if pyrtl then begin
              print_endline "";
              print_string
                (Hdl.Pyrtl.generated_to_string ~pre_exprs:s.Synth.Engine.pre_exprs
                   ~per_instr:s.Synth.Engine.per_instr
                   ~shared:s.Synth.Engine.shared)
            end;
            (match output with
            | Some file ->
                let oc = open_out file in
                output_string oc
                  (Oyster.Printer.design_to_string s.Synth.Engine.completed);
                close_out oc;
                Printf.printf "completed design written to %s\n" file
            | None -> ())
        | Synth.Engine.Timeout st ->
            Printf.printf
              "timeout after %.1fs (%d CEGIS rounds, %d solver queries, %d \
               conflicts)\n"
              st.Synth.Engine.wall_seconds st.Synth.Engine.iterations
              st.Synth.Engine.queries st.Synth.Engine.conflicts;
            exit 2
        | Synth.Engine.Unrealizable { instr; _ } ->
            Printf.printf "unrealizable: no control logic satisfies %s\n"
              (Option.value instr ~default:"the specification");
            exit 3
        | Synth.Engine.Union_failed { diagnostic; _ } ->
            Printf.printf "union failed: %s\n" diagnostic;
            exit 4
        | Synth.Engine.Not_independent { overlapping; feedback; _ } ->
            Printf.printf
              "instruction independence fails: %d overlapping pairs, %d feedback paths\n"
              (List.length overlapping) (List.length feedback);
            exit 5)
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize control logic for a case-study design")
    Term.(const run $ design_arg $ monolithic $ Args.jobs $ deadline $ output
          $ pyrtl $ Args.no_incremental $ Args.retries $ Args.escalation_factor
          $ Args.validate_models $ Args.strategy $ Args.race $ Args.cache_dir
          $ Args.no_cache $ Args.fault_plan $ Args.trace $ Args.metrics)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.oyster")

let parse_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  Oyster.Parser.parse_design src

let check_cmd =
  let run file =
    match parse_file file with
    | exception Oyster.Parser.Parse_error m ->
        Printf.eprintf "parse error: %s\n" m;
        exit 1
    | d -> (
        match Oyster.Typecheck.check d with
        | exception Oyster.Typecheck.Type_error m ->
            Printf.eprintf "type error: %s\n" m;
            exit 1
        | _ ->
            Printf.printf
              "%s: ok (%d declarations, %d statements, %d holes, %d LoC)\n"
              d.Oyster.Ast.name
              (List.length d.Oyster.Ast.decls)
              (List.length d.Oyster.Ast.stmts)
              (List.length (Oyster.Ast.holes d))
              (Oyster.Printer.loc d))
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and typecheck a textual Oyster design")
    Term.(const run $ file_arg)

let netlist_cmd =
  let optimize =
    Arg.(value & flag & info [ "optimize" ] ~doc:"Apply the logic optimizer.")
  in
  let run file optimize =
    let d = parse_file file in
    let c = Netlist.of_design ~optimize d in
    Printf.printf "and %d  or %d  xor %d  not %d  mux %d  | gates %d  dffs %d\n"
      c.Netlist.ands c.Netlist.ors c.Netlist.xors c.Netlist.nots c.Netlist.muxes
      c.Netlist.total_gates c.Netlist.dffs
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Compile a hole-free design to gates and count them")
    Term.(const run $ file_arg $ optimize)

let cosim_cmd =
  (* co-simulate a synthesized core against the ISS on random programs *)
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Number of random programs.")
  in
  let run name seeds =
    let variant, problem =
      match name with
      | "rv32-single" -> (Some Isa.Rv32.RV32I, Designs.Riscv_single.problem Isa.Rv32.RV32I)
      | "rv32-single-zbkb" ->
          (Some Isa.Rv32.RV32I_Zbkb, Designs.Riscv_single.problem Isa.Rv32.RV32I_Zbkb)
      | "rv32-single-zbkc" ->
          (Some Isa.Rv32.RV32I_Zbkc, Designs.Riscv_single.problem Isa.Rv32.RV32I_Zbkc)
      | "rv32-two-stage" ->
          (Some Isa.Rv32.RV32I, Designs.Riscv_two_stage.problem Isa.Rv32.RV32I)
      | "crypto-core" -> (None, Designs.Crypto_core.problem ())
      | _ ->
          prerr_endline "cosim supports the RISC-V cores and crypto-core";
          exit 1
    in
    match Synth.Engine.synthesize problem with
    | Synth.Engine.Solved s ->
        Printf.printf "synthesized in %.2fs; co-simulating %d random programs...\n%!"
          s.Synth.Engine.stats.Synth.Engine.wall_seconds seeds;
        let failures = ref 0 in
        for seed = 1 to seeds do
          let rng = Random.State.make [| seed; 4096 |] in
          let profile, variant', cmov =
            match variant with
            | Some v -> (`Standard, v, false)
            | None -> (`Cmov, Isa.Rv32.RV32I_Zbkb, true)
          in
          let program = Designs.Testbench.random_program ~profile rng variant' ~len:40 in
          let dmem_init =
            List.init 32 (fun i ->
                (i, Bitvec.of_bits (Array.init 32 (fun _ -> Random.State.bool rng))))
          in
          let halt_pc = 4 * (List.length program - 1) in
          let core =
            Designs.Testbench.run_core s.Synth.Engine.completed ~program ~dmem_init
              ~halt_pc ~max_cycles:2000
          in
          let _, iss =
            Designs.Testbench.run_iss ~cmov variant' ~program ~dmem_init
              ~max_cycles:2000
          in
          let ok = ref (core.Designs.Testbench.cycles_to_halt <> None) in
          for r = 0 to 31 do
            if
              not
                (Bitvec.equal
                   (Designs.Testbench.core_reg core.Designs.Testbench.state r)
                   (Isa.Iss.get_reg iss r))
            then ok := false
          done;
          Printf.printf "  seed %2d: %s\n%!" seed (if !ok then "OK" else "MISMATCH");
          if not !ok then incr failures
        done;
        if !failures > 0 then exit 1
    | _ ->
        prerr_endline "synthesis failed";
        exit 1
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:"Synthesize a core and co-simulate it against the ISS oracle")
    Term.(const run $ design_arg $ seeds)

let independence_cmd =
  let run name =
    match lookup name with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok e ->
        let problem = e.problem () in
        let trace =
          Oyster.Symbolic.eval problem.Synth.Engine.design
            ~cycles:problem.Synth.Engine.af.Ila.Absfun.cycles
        in
        let conds =
          Ila.Conditions.compile problem.Synth.Engine.spec problem.Synth.Engine.af
            trace
        in
        let excl = Synth.Independence.check_mutual_exclusion conds in
        let fb = Synth.Independence.check_no_feedback problem.Synth.Engine.design in
        let n = List.length conds in
        Printf.printf "%d instructions, %d precondition pairs checked\n" n
          (n * (n - 1) / 2);
        (match excl.Synth.Independence.overlapping with
        | [] -> print_endline "mutually exclusive preconditions: yes"
        | l ->
            Printf.printf "OVERLAPPING pairs: %s\n"
              (String.concat ", "
                 (List.map (fun (a, b) -> a ^ "/" ^ b) l)));
        (match fb.Synth.Independence.feedback_paths with
        | [] -> print_endline "no control feedback: yes"
        | l ->
            List.iter
              (fun (src, wire, dst) ->
                Printf.printf "FEEDBACK: hole %s -> wire %s -> hole %s\n" src wire dst)
              l);
        if
          excl.Synth.Independence.overlapping <> []
          || fb.Synth.Independence.feedback_paths <> []
        then exit 1
  in
  Cmd.v
    (Cmd.info "independence"
       ~doc:"Check the instruction-independence conditions (paper 3.3.1)")
    Term.(const run $ design_arg)

let verify_cmd =
  (* verify the hand-written reference control against the specification *)
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock bound per query.")
  in
  let run name deadline jobs no_incremental retries escalation_factor
      validate_models strategy race fault_plan trace metrics =
    Args.check_jobs jobs;
    Args.install_fault_plan fault_plan;
    Args.install_observability ~trace ~metrics;
    match lookup name with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok e -> (
        match e.reference with
        | None ->
            prerr_endline "no reference design registered";
            exit 1
        | Some f ->
            let problem = e.problem () in
            let problem = { problem with Synth.Engine.design = f () } in
            let deadline = Option.map (fun d -> Unix.gettimeofday () +. d) deadline in
            let race_tally = Synth.Portfolio.create_tally () in
            let results =
              or_engine_error (fun () ->
                  Synth.Engine.verify ?deadline ~jobs
                    ~incremental:(not no_incremental) ~retries
                    ~escalation_factor ~validate_models ~strategy ~race
                    ~race_tally problem)
            in
            if Synth.Portfolio.enabled race then report_race_tally race_tally;
            let bad = ref 0 in
            List.iter
              (fun (iname, verdict) ->
                match verdict with
                | Synth.Engine.Verified -> Printf.printf "  %-20s verified\n" iname
                | Synth.Engine.Violated _ ->
                    incr bad;
                    Printf.printf "  %-20s VIOLATED\n" iname
                | Synth.Engine.Inconclusive ->
                    incr bad;
                    Printf.printf "  %-20s inconclusive (budget)\n" iname)
              results;
            Printf.printf "%d/%d instructions verified\n"
              (List.length results - !bad)
              (List.length results);
            if !bad > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Formally verify the hand-written reference control against the ILA specification")
    Term.(const run $ design_arg $ deadline $ Args.jobs $ Args.no_incremental
          $ Args.retries $ Args.escalation_factor $ Args.validate_models
          $ Args.strategy $ Args.race $ Args.fault_plan $ Args.trace
          $ Args.metrics)

let verilog_cmd =
  let run file =
    let d = parse_file file in
    print_string (Hdl.Verilog.of_design d)
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Emit a hole-free design as Verilog-2001")
    Term.(const run $ file_arg)

let sim_cmd =
  let cycles =
    Arg.(value & opt int 10 & info [ "n"; "cycles" ] ~docv:"N" ~doc:"Cycles to run.")
  in
  let vcd =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"FILE" ~doc:"Write a waveform dump to $(docv).")
  in
  let run file cycles vcd =
    let d = parse_file file in
    ignore (Oyster.Typecheck.check d);
    let st = Oyster.Interp.init d in
    let recorder = Oyster.Vcd.create d in
    for c = 1 to cycles do
      let r = Oyster.Interp.step ~inputs:(fun _ w -> Bitvec.zero w) st in
      Oyster.Vcd.sample recorder st r;
      Printf.printf "cycle %3d:" c;
      List.iter
        (fun (n, v) -> Printf.printf " %s=%s" n (Bitvec.to_string v))
        r.Oyster.Interp.outputs;
      print_newline ()
    done;
    match vcd with
    | Some file ->
        let oc = open_out file in
        output_string oc (Oyster.Vcd.to_string recorder);
        close_out oc;
        Printf.printf "waveforms written to %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Simulate a hole-free design with all inputs forced to zero")
    Term.(const run $ file_arg $ cycles $ vcd)

let cache_cmd =
  (* maintenance for the on-disk synthesis cache; resolution mirrors the
     synth flags (--cache-dir beats OWL_CACHE_DIR beats the conventional
     .owl-cache directory) but here a missing directory is just reported,
     never created *)
  let dir_term =
    let doc =
      "Cache directory to operate on.  Also read from the OWL_CACHE_DIR \
       environment variable; defaults to '.owl-cache'."
    in
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let resolve dir =
    match dir with
    | Some d -> d
    | None -> (
        match Sys.getenv_opt "OWL_CACHE_DIR" with
        | Some d -> d
        | None -> Args.default_cache_dir)
  in
  let stats_cmd =
    let json =
      Arg.(value & flag
           & info [ "json" ]
               ~doc:
                 "Emit the statistics as JSON, in the serve protocol's \
                  cache_stats schema (the same record `owl client stats \
                  --json' prints for a live server).")
    in
    (* one schema for cache state everywhere: the offline fields the
       daemon would fill (hot tier, served/rejected, uptime) read as
       null/zero here *)
    let empty_stats =
      {
        Owl_serve.Proto.disk = None;
        store = None;
        hot_tier = None;
        served = 0;
        rejected = 0;
        uptime_seconds = 0.0;
      }
    in
    let run dir json =
      let dir = resolve dir in
      if not (Sys.file_exists dir) then
        if json then
          print_endline (Owl_serve.Proto.cache_stats_to_json empty_stats)
        else Printf.printf "%s: no cache\n" dir
      else
        let s = Owl_cache.disk_stats (Owl_cache.open_dir dir) in
        if json then
          print_endline
            (Owl_serve.Proto.cache_stats_to_json
               { empty_stats with Owl_serve.Proto.disk = Some s })
        else
          Printf.printf "%s: %d result entries, %d warm entries, %d bytes\n"
            dir s.Owl_cache.result_entries s.Owl_cache.warm_entries
            s.Owl_cache.total_bytes
    in
    Cmd.v (Cmd.info "stats" ~doc:"Show entry counts and on-disk size")
      Term.(const run $ dir_term $ json)
  in
  let clear_cmd =
    let run dir =
      let dir = resolve dir in
      if not (Sys.file_exists dir) then
        Printf.printf "%s: no cache\n" dir
      else
        let n = Owl_cache.clear (Owl_cache.open_dir dir) in
        Printf.printf "%s: %d entries removed\n" dir n
    in
    Cmd.v (Cmd.info "clear" ~doc:"Remove every cache entry")
      Term.(const run $ dir_term)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear the cross-run synthesis cache")
    [ stats_cmd; clear_cmd ]

(* {1 The synthesis service}

   [owl serve] runs the long-lived daemon; [owl client *] talks to it.
   The registry is shared with the offline subcommands: a request names
   a case study and the server constructs the problem, so ISA specs and
   sketches never cross the wire. *)

let serve_cmd =
  let run addr jobs queue_depth hot_tier_size cache_dir no_cache trace metrics
      fault_plan no_telemetry dump_dir =
    Args.check_jobs jobs;
    Args.check_serve ~queue_depth ~hot_tier_size;
    Args.install_observability ~trace ~metrics;
    (* chaos testing: worker_kill/conn_drop/frame_delay/shed directives
       land in the serve layer, the solver directives in the engine *)
    Args.install_fault_plan fault_plan;
    let addr = Args.resolve_addr addr in
    let cache = Args.open_cache ~cache_dir ~no_cache in
    let lookup kind name =
      match List.assoc_opt name registry with
      | None -> None
      | Some e -> (
          match kind with
          | `Synth -> Some (e.problem ())
          | `Verify -> (
              (* verification checks the hand-written reference control,
                 exactly as the offline `owl verify' does *)
              match e.reference with
              | None -> None
              | Some f ->
                  let p = e.problem () in
                  Some { p with Synth.Engine.design = f () }))
    in
    Printf.printf
      "owl serve: listening on %s (%d worker%s, queue depth %d, hot tier %d)\n%!"
      (Owl_serve.Proto.addr_to_string addr)
      jobs
      (if jobs = 1 then "" else "s")
      queue_depth hot_tier_size;
    Owl_serve.Server.run
      {
        Owl_serve.Server.addr;
        jobs;
        queue_depth;
        hot_tier_size;
        cache;
        server_name = "owl/1.0.0";
        telemetry = not no_telemetry;
        dump_dir;
      }
      ~lookup;
    print_endline "owl serve: drained and shut down"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the synthesis daemon (long-lived, multi-client)")
    Term.(const run $ Args.addr $ Args.jobs $ Args.queue_depth
          $ Args.hot_tier_size $ Args.cache_dir $ Args.no_cache $ Args.trace
          $ Args.metrics $ Args.fault_plan $ Args.no_telemetry $ Args.dump_dir)

(* shared by [owl client *] and [owl top] *)
let describe_client_error = function
  | Owl_serve.Client.Server_busy n -> Printf.sprintf "server busy, %d queued" n
  | Owl_serve.Client.Server_error e ->
      Printf.sprintf "server error %s" e.Owl_serve.Proto.code
  | Owl_serve.Client.Protocol_error _ | Owl_serve.Proto.Framing_error _ ->
      "connection broken"
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | e -> Printexc.to_string e

(* every attempt gets a fresh connection; [Client.with_retry] spaces
   them out with jittered exponential backoff.  Only the final failure
   reaches the error reporting below. *)
let with_client addr (retries, backoff_ms) f =
  let describe = describe_client_error in
    let addr = Args.resolve_addr addr in
    try
      Owl_serve.Client.with_retry ~retries ~backoff_ms
        ~on_retry:(fun ~attempt ~delay e ->
          Printf.eprintf "owl: attempt %d failed (%s); retrying in %.2fs\n%!"
            attempt (describe e) delay)
        addr f
    with
    | Owl_serve.Client.Server_busy n ->
        Printf.eprintf "owl: server busy (%d requests queued); retry later\n" n;
        exit 7
    | Owl_serve.Client.Server_error e ->
        Printf.eprintf "owl: server error (%s): %s\n" e.Owl_serve.Proto.code
          e.Owl_serve.Proto.message;
        exit 6
    | Owl_serve.Client.Protocol_error m | Owl_serve.Proto.Framing_error m ->
        Printf.eprintf "owl: protocol error: %s\n" m;
        exit 6
    | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT) as e, _, _) ->
        Printf.eprintf "owl: cannot reach server at %s: %s\n"
          (Owl_serve.Proto.addr_to_string addr)
          (Unix.error_message e);
        exit 1
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "owl: connection lost: %s\n" (Unix.error_message e);
        exit 6

let retry_term =
  Term.(
    const (fun connect_retries backoff_ms ->
        Args.resolve_client_retry ~connect_retries ~backoff_ms)
    $ Args.connect_retries $ Args.backoff_ms)

let client_cmd =
  let quiet =
    Arg.(value & flag
         & info [ "q"; "quiet" ] ~doc:"Suppress streamed progress events.")
  in
  let on_progress quiet p =
    if not quiet then
      match p with
      | Owl_serve.Proto.Instr_started { instr } ->
          Printf.printf "  > %s...\n%!" instr
      | Owl_serve.Proto.Instr_done { instr; status; iterations; queries } ->
          if iterations = 0 && queries = 0 then
            Printf.printf "  < %-20s %s\n%!" instr status
          else
            Printf.printf "  < %-20s %s (%d rounds, %d queries)\n%!" instr
              status iterations queries
      | Owl_serve.Proto.Retry { attempt; reason } ->
          Printf.printf "  ! retry, attempt %d (%s)\n%!" attempt reason
      | Owl_serve.Proto.Degraded { attempt } ->
          Printf.printf "  ! degraded to a fresh solver (attempt %d)\n%!"
            attempt
  in
  (* the subset of the engine options that makes sense remotely; jobs is
     deliberately absent (the server pins each request to one domain) and
     the cache is the server's policy *)
  let remote_options monolithic deadline no_incremental retries
      escalation_factor validate_models strategy race =
    try
      Synth.Engine.(
        default_options
        |> with_mode (if monolithic then Monolithic else Per_instruction)
        |> with_deadline deadline
        |> with_incremental (not no_incremental)
        |> with_retries retries
        |> with_escalation_factor escalation_factor
        |> with_validate_models validate_models
        |> with_strategy strategy
        |> with_race race)
    with Invalid_argument m ->
      Printf.eprintf "owl: %s\n" m;
      exit 1
  in
  let monolithic =
    Arg.(value & flag
         & info [ "monolithic" ]
             ~doc:"Disable the per-instruction optimization (paper 3.3.1).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Server-side wall-clock timeout for this request.")
  in
  let print_stats (st : Synth.Engine.stats) =
    Printf.printf "  %d CEGIS rounds, %d solver queries, %d conflicts, %.2fs\n"
      st.Synth.Engine.iterations st.Synth.Engine.queries
      st.Synth.Engine.conflicts st.Synth.Engine.wall_seconds
  in
  let synth_cmd =
    let run name addr retry monolithic deadline no_incremental retries
        escalation_factor validate_models strategy race quiet =
      let options =
        remote_options monolithic deadline no_incremental retries
          escalation_factor validate_models strategy race
      in
      with_client addr retry (fun c ->
          let r =
            Owl_serve.Client.synth ~on_progress:(on_progress quiet) c
              ~design:name options
          in
          Printf.printf "%s%s%s\n" r.Owl_serve.Proto.outcome
            (if r.Owl_serve.Proto.detail = "" then ""
             else ": " ^ r.Owl_serve.Proto.detail)
            (if r.Owl_serve.Proto.hot then " [hot]" else "");
          print_stats r.Owl_serve.Proto.stats;
          List.iter
            (fun (hole, expr) -> Printf.printf "  %s = %s\n" hole expr)
            r.Owl_serve.Proto.bindings;
          match r.Owl_serve.Proto.outcome with
          | "solved" -> ()
          | "timeout" -> exit 2
          | "unrealizable" -> exit 3
          | "union_failed" -> exit 4
          | "not_independent" -> exit 5
          | _ -> exit 6)
    in
    Cmd.v
      (Cmd.info "synth" ~doc:"Synthesize a case study on the server")
      Term.(const run $ design_arg $ Args.addr $ retry_term $ monolithic
            $ deadline $ Args.no_incremental $ Args.retries
            $ Args.escalation_factor $ Args.validate_models $ Args.strategy
            $ Args.race $ quiet)
  in
  let verify_cmd =
    let run name addr retry deadline no_incremental retries escalation_factor
        validate_models strategy race quiet =
      let options =
        remote_options false deadline no_incremental retries escalation_factor
          validate_models strategy race
      in
      with_client addr retry (fun c ->
          let r =
            Owl_serve.Client.verify ~on_progress:(on_progress quiet) c
              ~design:name options
          in
          let bad = ref 0 in
          List.iter
            (fun (instr, verdict) ->
              if verdict <> "verified" then incr bad;
              Printf.printf "  %-20s %s\n" instr verdict)
            r.Owl_serve.Proto.verdicts;
          Printf.printf "%d/%d instructions verified%s\n"
            (List.length r.Owl_serve.Proto.verdicts - !bad)
            (List.length r.Owl_serve.Proto.verdicts)
            (if r.Owl_serve.Proto.v_hot then " [hot]" else "");
          if !bad > 0 then exit 1)
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Verify a case study's reference control on the server")
      Term.(const run $ design_arg $ Args.addr $ retry_term $ deadline
            $ Args.no_incremental $ Args.retries $ Args.escalation_factor
            $ Args.validate_models $ Args.strategy $ Args.race $ quiet)
  in
  let stats_cmd =
    let json =
      Arg.(value & flag
           & info [ "json" ] ~doc:"Emit the cache_stats record as JSON.")
    in
    let run addr retry json =
      with_client addr retry (fun c ->
          let s = Owl_serve.Client.cache_stats c in
          if json then
            print_endline (Owl_serve.Proto.cache_stats_to_json s)
          else begin
            (match s.Owl_serve.Proto.hot_tier with
            | Some h ->
                Printf.printf "hot tier: %d/%d entries, %d hits, %d misses, %d evictions\n"
                  h.Owl_serve.Proto.hot_size h.Owl_serve.Proto.hot_capacity
                  h.Owl_serve.Proto.hot_hits h.Owl_serve.Proto.hot_misses
                  h.Owl_serve.Proto.hot_evictions
            | None -> ());
            (match s.Owl_serve.Proto.store with
            | Some k ->
                Printf.printf "disk cache: %d hits, %d misses, %d stale, %d writes\n"
                  k.Owl_cache.hits k.Owl_cache.misses k.Owl_cache.stale
                  k.Owl_cache.writes
            | None -> print_endline "disk cache: none");
            (match s.Owl_serve.Proto.disk with
            | Some d ->
                Printf.printf "disk usage: %d result entries, %d warm entries, %d bytes\n"
                  d.Owl_cache.result_entries d.Owl_cache.warm_entries
                  d.Owl_cache.total_bytes
            | None -> ());
            Printf.printf "served %d, rejected %d, up %.1fs\n"
              s.Owl_serve.Proto.served s.Owl_serve.Proto.rejected
              s.Owl_serve.Proto.uptime_seconds
          end)
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Show the server's cache and service statistics")
      Term.(const run $ Args.addr $ retry_term $ json)
  in
  let ping_cmd =
    let run addr retry =
      with_client addr retry (fun c ->
          let server, protocol, h = Owl_serve.Client.ping c in
          Printf.printf "pong from %s (protocol %d)\n" server protocol;
          (* an old server that predates the extended health report
             answers with zeroed fields; suppress the rows it cannot
             fill rather than printing lies *)
          if h.Owl_serve.Proto.uptime_s > 0.0 || h.Owl_serve.Proto.build <> ""
          then
            Printf.printf "up %.1fs, build %s\n" h.Owl_serve.Proto.uptime_s
              (if h.Owl_serve.Proto.build = "" then "?"
               else h.Owl_serve.Proto.build);
          Printf.printf
            "workers %d/%d alive (%d lost), %d queued%s\n"
            h.Owl_serve.Proto.workers_alive h.Owl_serve.Proto.workers
            h.Owl_serve.Proto.workers_lost h.Owl_serve.Proto.queue_waiting
            (if h.Owl_serve.Proto.degraded then " [DEGRADED]" else "");
          if h.Owl_serve.Proto.hot_capacity > 0 then
            Printf.printf "hot tier %d/%d entries\n"
              h.Owl_serve.Proto.hot_size h.Owl_serve.Proto.hot_capacity;
          if
            h.Owl_serve.Proto.cancelled > 0
            || h.Owl_serve.Proto.shed > 0
            || h.Owl_serve.Proto.timeouts > 0
            || h.Owl_serve.Proto.degraded_seconds > 0.0
          then
            Printf.printf
              "cancelled %d, shed %d, timeouts %d, degraded %.1fs total\n"
              h.Owl_serve.Proto.cancelled h.Owl_serve.Proto.shed
              h.Owl_serve.Proto.timeouts h.Owl_serve.Proto.degraded_seconds)
    in
    Cmd.v
      (Cmd.info "ping"
         ~doc:"Check that the server answers, and report its health")
      Term.(const run $ Args.addr $ retry_term)
  in
  let metrics_cmd =
    let prometheus =
      Arg.(value & flag
           & info [ "prometheus" ]
               ~doc:"Render in the Prometheus text exposition format.")
    in
    let json =
      Arg.(value & flag
           & info [ "json" ] ~doc:"Emit the metrics as a JSON array.")
    in
    let run addr retry prometheus json =
      with_client addr retry (fun c ->
          let ms = Owl_serve.Client.metrics c in
          if prometheus then
            print_string (Owl_serve.Proto.metrics_to_prometheus ms)
          else if json then
            print_endline (Owl_serve.Proto.metrics_to_json ms)
          else if ms = [] then
            print_endline
              "no metrics (is the daemon running with --no-telemetry?)"
          else begin
            Printf.printf "%-40s %-10s %12s %10s %10s %10s\n" "metric" "kind"
              "value/count" "p50" "p90" "p99";
            List.iter
              (fun m ->
                match m.Owl_serve.Proto.m_kind with
                | "counter" | "gauge" ->
                    Printf.printf "%-40s %-10s %12d\n"
                      m.Owl_serve.Proto.m_name m.Owl_serve.Proto.m_kind
                      m.Owl_serve.Proto.m_count
                | _ ->
                    Printf.printf "%-40s %-10s %12d %10d %10d %10d\n"
                      m.Owl_serve.Proto.m_name m.Owl_serve.Proto.m_kind
                      m.Owl_serve.Proto.m_count m.Owl_serve.Proto.m_p50
                      m.Owl_serve.Proto.m_p90 m.Owl_serve.Proto.m_p99)
              ms
          end)
    in
    Cmd.v
      (Cmd.info "metrics"
         ~doc:
           "Scrape the server's live metric registry (counters, gauges, \
            histograms, sliding windows)")
      Term.(const run $ Args.addr $ retry_term $ prometheus $ json)
  in
  let dump_trace_cmd =
    let trace =
      Arg.(value & opt (some string) None
           & info [ "trace" ] ~docv:"ID"
               ~doc:
                 "Restrict the dump to one request's trace id (reported in \
                  synth/verify replies and flight dumps).")
    in
    let output =
      Arg.(value & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE"
               ~doc:"Write the Chrome-trace JSON to $(docv) instead of stdout.")
    in
    let run addr retry trace output =
      with_client addr retry (fun c ->
          let doc = Owl_serve.Client.dump_trace ?trace c in
          match output with
          | None -> print_string doc
          | Some file ->
              let oc = open_out file in
              output_string oc doc;
              close_out oc;
              Printf.eprintf "flight trace written to %s\n" file)
    in
    Cmd.v
      (Cmd.info "dump-trace"
         ~doc:
           "Dump the server's flight recorder (recent spans, Chrome-trace \
            JSON), optionally filtered to one request")
      Term.(const run $ Args.addr $ retry_term $ trace $ output)
  in
  let shutdown_cmd =
    let run addr retry =
      with_client addr retry (fun c ->
          Owl_serve.Client.shutdown c;
          print_endline "server acknowledged shutdown")
    in
    Cmd.v
      (Cmd.info "shutdown" ~doc:"Ask the server to drain and exit")
      Term.(const run $ Args.addr $ retry_term)
  in
  Cmd.group (Cmd.info "client" ~doc:"Talk to a running owl serve daemon")
    [ synth_cmd; verify_cmd; stats_cmd; ping_cmd; metrics_cmd; dump_trace_cmd;
      shutdown_cmd ]

(* [owl top]: a polling terminal dashboard over the same wire requests
   the client subcommands use (ping + metrics + cache_stats).  Rates are
   deltas between successive polls; latency quantiles come from the
   server's sliding 1-minute window, so they describe recent traffic,
   not the daemon's lifetime. *)
let top_cmd =
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let count =
    Arg.(value & opt (some int) None
         & info [ "count" ] ~docv:"N"
             ~doc:
               "Exit after $(docv) refreshes (default: run until \
                interrupted).  With 1, prints a single snapshot — no \
                screen clearing, suitable for scripts.")
  in
  let run addr retry interval count =
    if interval <= 0.0 then begin
      prerr_endline "owl: --interval must be > 0";
      exit 1
    end;
    (match count with
    | Some n when n < 1 ->
        prerr_endline "owl: --count must be >= 1";
        exit 1
    | _ -> ());
    let find name ms =
      List.find_opt (fun m -> m.Owl_serve.Proto.m_name = name) ms
    in
    let gauge name ms =
      match find name ms with
      | Some m -> Some m.Owl_serve.Proto.m_count
      | None -> None
    in
    let one_shot = count = Some 1 in
    (* previous poll: (time, requests counter, tier hits, tier misses) *)
    let prev = ref None in
    let frame () =
      with_client addr retry (fun c ->
          let server, _protocol, h = Owl_serve.Client.ping c in
          let ms = Owl_serve.Client.metrics c in
          let stats = Owl_serve.Client.cache_stats c in
          let now = Unix.gettimeofday () in
          if not one_shot then print_string "\027[2J\027[H";
          Printf.printf "owl top — %s%s  up %.0fs  served %d  rejected %d\n"
            server
            (if h.Owl_serve.Proto.degraded then "  [DEGRADED]" else "")
            h.Owl_serve.Proto.uptime_s stats.Owl_serve.Proto.served
            stats.Owl_serve.Proto.rejected;
          Printf.printf
            "workers   %d/%d alive (%d lost)   queue %d   in-flight %s\n"
            h.Owl_serve.Proto.workers_alive h.Owl_serve.Proto.workers
            h.Owl_serve.Proto.workers_lost h.Owl_serve.Proto.queue_waiting
            (match gauge "serve.inflight" ms with
            | Some n -> string_of_int n
            | None -> "?");
          let tier_hits, tier_misses =
            match stats.Owl_serve.Proto.hot_tier with
            | Some t -> (t.Owl_serve.Proto.hot_hits, t.Owl_serve.Proto.hot_misses)
            | None -> (0, 0)
          in
          Printf.printf "hot tier  %d/%d entries   %d hits, %d misses lifetime\n"
            h.Owl_serve.Proto.hot_size h.Owl_serve.Proto.hot_capacity
            tier_hits tier_misses;
          let requests =
            match find "serve.requests" ms with
            | Some m -> m.Owl_serve.Proto.m_count
            | None -> 0
          in
          (match !prev with
          | Some (t0, req0, hit0, miss0) when now > t0 ->
              let dt = now -. t0 in
              let dreq = requests - req0 in
              let dhit = tier_hits - hit0 and dmiss = tier_misses - miss0 in
              let probes = dhit + dmiss in
              Printf.printf "interval  %.1f req/s   hot hit rate %s\n"
                (float_of_int dreq /. dt)
                (if probes = 0 then "-"
                 else Printf.sprintf "%.0f%%"
                        (100.0 *. float_of_int dhit /. float_of_int probes))
          | _ ->
              print_endline "interval  (gathering — rates appear next poll)");
          (match find "serve.job.latency_us.1m" ms with
          | Some m when m.Owl_serve.Proto.m_count > 0 ->
              Printf.printf
                "latency   p50 %.1fms  p99 %.1fms  (%d jobs, last 60s)\n"
                (float_of_int m.Owl_serve.Proto.m_p50 /. 1e3)
                (float_of_int m.Owl_serve.Proto.m_p99 /. 1e3)
                m.Owl_serve.Proto.m_count
          | _ ->
              print_endline
                "latency   (no solver jobs in the last 60s, or telemetry off)");
          prev := Some (now, requests, tier_hits, tier_misses))
    in
    let rec loop n =
      frame ();
      print_newline ();
      flush stdout;
      if match count with Some k -> n + 1 < k | None -> true then begin
        Unix.sleepf interval;
        loop (n + 1)
      end
    in
    loop 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard for a running owl serve daemon \
          (throughput, hit rate, queue depth, worker health, latency)")
    Term.(const run $ Args.addr $ retry_term $ interval $ count)

let () =
  let info =
    Cmd.info "owl" ~version:"1.0.0"
      ~doc:"Control logic synthesis: drawing the rest of the OWL"
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; print_cmd; synth_cmd; cosim_cmd; independence_cmd;
         verify_cmd; check_cmd; netlist_cmd; verilog_cmd; sim_cmd;
         cache_cmd; serve_cmd; client_cmd; top_cmd ]))
