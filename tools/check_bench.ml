(* Schema checker for the committed BENCH_<date>.json reports.

   The bench harness appends one report per dated run, and downstream
   consumers — EXPERIMENTS.md tables, ad-hoc jq, the overhead numbers in
   DESIGN.md — parse them by hand.  Nothing else validates the files, so
   a field rename or a malformed emission would be discovered weeks
   later by a broken table.  This tool is that validation, wired into
   @bench-smoke so `dune runtest`-adjacent CI catches drift:

   - every file parses, and its "date" member matches the filename;
   - "sections" is non-empty and each entry carries a name and a
     non-negative wall;
   - every run names a recorded section and carries a non-negative wall;
   - solved runs carry the core engine-stats fields, and all solved runs
     within one file share a single key set (the stats schema may grow
     between dated files but never within one);
   - metric summaries are internally ordered: min <= max and
     p50 <= p90 <= p99.  Deliberately NOT p99 <= max: the quantile is a
     log2 bucket estimate and may overshoot the observed maximum;
   - dates increase strictly across files, sorted by filename.

   Usage: dune exec tools/check_bench.exe [FILES...]
   With no arguments it checks every BENCH_*.json in the current
   directory (the repo root, when run through @bench-smoke). *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("check_bench: " ^ m);
      exit 1)
    fmt

(* stats fields every solved run has carried since the first report;
   later fields (the sat_* inprocessing family) are validated through
   the per-file key-set consistency check instead *)
let core_stats_fields =
  [
    "iterations"; "queries"; "sat_conflicts"; "sat_vars"; "sat_clauses";
    "trivial_unsats"; "retried_queries"; "degraded_queries";
    "validation_failures"; "task_retries";
  ]

let metric_kinds = [ "counter"; "gauge"; "histogram"; "window" ]

let num ~file ~what v =
  match v with
  | Some (Json.Num n) -> n
  | Some _ -> fail "%s: %s is not a number" file what
  | None -> fail "%s: %s is missing" file what

let str ~file ~what v =
  match v with
  | Some (Json.String s) -> s
  | Some _ -> fail "%s: %s is not a string" file what
  | None -> fail "%s: %s is missing" file what

let arr ~file ~what v =
  match v with
  | Some (Json.Arr xs) -> xs
  | Some _ -> fail "%s: %s is not an array" file what
  | None -> fail "%s: %s is missing" file what

let obj_keys ~file ~what = function
  | Json.Obj kvs -> List.map fst kvs
  | _ -> fail "%s: %s is not an object" file what

(* BENCH_YYYY-MM-DD.json -> YYYY-MM-DD, or None when the name does not
   fit the pattern (such files are not reports and are skipped) *)
let date_of_filename f =
  let base = Filename.basename f in
  if
    String.length base = String.length "BENCH_2000-01-01.json"
    && String.sub base 0 6 = "BENCH_"
    && Filename.check_suffix base ".json"
  then begin
    let d = String.sub base 6 10 in
    let digit i = d.[i] >= '0' && d.[i] <= '9' in
    if
      digit 0 && digit 1 && digit 2 && digit 3
      && d.[4] = '-'
      && digit 5 && digit 6
      && d.[7] = '-'
      && digit 8 && digit 9
    then Some d
    else None
  end
  else None

let check_section ~file s =
  let name = str ~file ~what:"section name" (Json.member "name" s) in
  if name = "" then fail "%s: empty section name" file;
  let wall =
    num ~file
      ~what:(Printf.sprintf "section %s wall_seconds" name)
      (Json.member "wall_seconds" s)
  in
  if wall < 0.0 then fail "%s: section %s has negative wall" file name;
  name

(* Portfolio summary rows (section "portfolio", no outcome) carry the
   racing schema the EXPERIMENTS.md speedup tables consume: both speedup
   fields present, win counts parse as "racer:wins" pairs whose wins sum
   to races_won, no more races won than run, and no more cubes refuted
   than fanned out. *)
let check_portfolio_summary ~file ~what r =
  let field k = num ~file ~what:(what ^ " " ^ k) (Json.member k r) in
  List.iter
    (fun k -> if field k < 0.0 then fail "%s: %s has negative %s" file what k)
    [ "sequential_wall_seconds"; "portfolio_wall_seconds";
      "cube_wall_seconds"; "portfolio_speedup"; "cube_speedup"; "races";
      "races_won"; "shared_out"; "shared_in"; "shared_dropped"; "cubes";
      "cubes_unsat" ];
  let races = field "races" and races_won = field "races_won" in
  if races_won > races then
    fail "%s: %s has races_won > races" file what;
  if field "cubes_unsat" > field "cubes" then
    fail "%s: %s has cubes_unsat > cubes" file what;
  let win_counts = str ~file ~what:(what ^ " win_counts") (Json.member "win_counts" r) in
  let wins =
    List.fold_left
      (fun acc pair ->
        match String.split_on_char ':' pair with
        | [ racer; wins ] -> (
            match (int_of_string_opt racer, int_of_string_opt wins) with
            | Some racer, Some wins when racer >= 0 && wins >= 1 -> acc + wins
            | _ -> fail "%s: %s has malformed win_counts entry %S" file what pair)
        | _ -> fail "%s: %s has malformed win_counts entry %S" file what pair)
      0
      (List.filter (( <> ) "") (String.split_on_char ' ' win_counts))
  in
  if float_of_int wins <> races_won then
    fail "%s: %s win_counts sum to %d but races_won is %g" file what wins
      races_won;
  ignore (str ~file ~what:(what ^ " bindings_identical")
            (Json.member "bindings_identical" r));
  match Json.member "accelerated" r with
  | Some (Json.Bool _) -> ()
  | _ -> fail "%s: %s accelerated is not a bool" file what

let check_run ~file ~sections i r =
  let what = Printf.sprintf "run %d" i in
  let section = str ~file ~what:(what ^ " section") (Json.member "section" r) in
  if not (List.mem section sections) then
    fail "%s: %s names unrecorded section %S" file what section;
  let label = str ~file ~what:(what ^ " label") (Json.member "label" r) in
  if label = "" then fail "%s: %s has an empty label" file what;
  (* summary rows (derived comparisons, no outcome) carry free-form
     fields — except portfolio summaries, whose racing schema is pinned *)
  match Json.member "outcome" r with
  | None ->
      if section = "portfolio" then
        check_portfolio_summary ~file ~what:(what ^ " (portfolio summary)") r;
      None
  | Some (Json.String "solved") ->
      let wall =
        num ~file ~what:(what ^ " wall_seconds") (Json.member "wall_seconds" r)
      in
      if wall < 0.0 then fail "%s: %s has negative wall" file what;
      List.iter
        (fun k ->
          let v = num ~file ~what:(what ^ " " ^ k) (Json.member k r) in
          if v < 0.0 then fail "%s: %s has negative %s" file what k)
        core_stats_fields;
      Some (List.sort compare (obj_keys ~file ~what r))
  | Some _ ->
      let wall =
        num ~file ~what:(what ^ " wall_seconds") (Json.member "wall_seconds" r)
      in
      if wall < 0.0 then fail "%s: %s has negative wall" file what;
      None

let check_metric ~file m =
  let name = str ~file ~what:"metric name" (Json.member "name" m) in
  let what = Printf.sprintf "metric %s" name in
  let kind = str ~file ~what:(what ^ " kind") (Json.member "kind" m) in
  if not (List.mem kind metric_kinds) then
    fail "%s: %s has unknown kind %S" file what kind;
  let field k = num ~file ~what:(what ^ " " ^ k) (Json.member k m) in
  if field "count" < 0.0 then fail "%s: %s has negative count" file what;
  ignore (field "sum");
  if kind = "histogram" || kind = "window" then begin
    if field "min" > field "max" then fail "%s: %s has min > max" file what;
    let p50 = field "p50" and p90 = field "p90" and p99 = field "p99" in
    if not (p50 <= p90 && p90 <= p99) then
      fail "%s: %s quantiles are unordered (p50 %g, p90 %g, p99 %g)" file what
        p50 p90 p99
  end

let check_file file fname_date =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc =
    match Json.parse s with
    | doc -> doc
    | exception Json.Parse_error m -> fail "%s: not valid JSON: %s" file m
  in
  let date = str ~file ~what:"date" (Json.member "date" doc) in
  if date <> fname_date then
    fail "%s: date %S does not match the filename" file date;
  let sections =
    match arr ~file ~what:"sections" (Json.member "sections" doc) with
    | [] -> fail "%s: sections is empty" file
    | ss -> List.map (check_section ~file) ss
  in
  let runs =
    match arr ~file ~what:"runs" (Json.member "runs" doc) with
    | [] -> fail "%s: runs is empty" file
    | rs -> rs
  in
  let solved_keys = List.mapi (check_run ~file ~sections) runs in
  (match List.filter_map Fun.id solved_keys with
  | [] -> fail "%s: no solved run in the report" file
  | first :: rest ->
      if not (List.for_all (( = ) first) rest) then
        fail "%s: solved runs disagree on their stats fields" file);
  (* "metrics" postdates the first reports; absent is fine, present must
     be well-formed *)
  (match Json.member "metrics" doc with
  | None -> ()
  | Some _ as v ->
      List.iter (check_metric ~file) (arr ~file ~what:"metrics" v));
  (date, List.length runs)

let () =
  let files =
    match List.tl (Array.to_list Sys.argv) with
    | [] ->
        Sys.readdir "." |> Array.to_list
        |> List.filter (fun f -> date_of_filename f <> None)
    | fs -> fs
  in
  let files = List.sort compare files in
  if files = [] then fail "no BENCH_*.json files found or given";
  let checked =
    List.map
      (fun f ->
        match date_of_filename f with
        | Some d -> (f, check_file f d)
        | None -> fail "%s: filename is not BENCH_YYYY-MM-DD.json" f)
      files
  in
  (* filename order is date order, and dates never repeat *)
  let rec ordered = function
    | (f1, (d1, _)) :: ((f2, (d2, _)) :: _ as rest) ->
        if d1 >= d2 then
          fail "%s and %s: dates do not increase (%s then %s)" f1 f2 d1 d2;
        ordered rest
    | _ -> ()
  in
  ordered checked;
  List.iter
    (fun (f, (_, n)) ->
      Printf.printf "check_bench: %s ok (%d runs)\n" (Filename.basename f) n)
    checked;
  print_endline "check_bench: ok"
