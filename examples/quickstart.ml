(* Quickstart: synthesize FSM control for the paper's accumulator machine
   (§2.3, Fig. 3) and run the completed design.

     dune exec examples/quickstart.exe

   The sketch leaves three holes: the combinational next-state value (a
   Per_instruction hole over the state register and inputs) and the two
   branch-selection encodings (Shared holes).  The engine discovers the
   transitions and encodings that satisfy the ILA specification, completes
   the design, and we then drive it through a reset/accumulate/stop run. *)

let () =
  print_endline "== The datapath sketch (Oyster IR) ==";
  print_string (Oyster.Printer.design_to_string (Designs.Accumulator.sketch ()));
  print_endline "";
  print_endline "== Synthesizing control logic ==";
  (* engine options are the defaults piped through [with_*] setters;
     here: a wall-clock guard, and two worker domains for the
     per-instruction loops (the accumulator's Shared holes force the
     joint path anyway, so jobs only matters for bigger designs) *)
  let options =
    Synth.Engine.(
      default_options |> with_jobs 2 |> with_deadline (Some 30.0))
  in
  match Synth.Engine.synthesize ~options (Designs.Accumulator.problem ()) with
  | Synth.Engine.Solved s ->
      Printf.printf "solved in %.3fs (%d CEGIS rounds, %d solver queries)\n\n"
        s.Synth.Engine.stats.Synth.Engine.wall_seconds
        s.Synth.Engine.stats.Synth.Engine.iterations
        s.Synth.Engine.stats.Synth.Engine.queries;
      print_endline "synthesized state encodings:";
      List.iter
        (fun (h, v) -> Printf.printf "  %s = %s\n" h (Bitvec.to_string v))
        s.Synth.Engine.shared;
      print_endline "synthesized transitions (per specification instruction):";
      List.iter
        (fun (i, holes) ->
          Printf.printf "  %-12s -> next state %s\n" i
            (Bitvec.to_string (List.assoc "next" holes)))
        s.Synth.Engine.per_instr;
      print_endline "";
      print_endline "== The completed design ==";
      print_string (Oyster.Printer.design_to_string s.Synth.Engine.completed);
      print_endline "";
      print_endline "== Simulating: reset, accumulate 3+2+1, stop ==";
      let st = Oyster.Interp.init s.Synth.Engine.completed in
      let feed (reset, go, stop, v) =
        let r =
          Oyster.Interp.step
            ~inputs:(fun name _ ->
              match name with
              | "reset" -> Bitvec.of_int ~width:1 reset
              | "go" -> Bitvec.of_int ~width:1 go
              | "stop" -> Bitvec.of_int ~width:1 stop
              | "val" -> Bitvec.of_int ~width:2 v
              | _ -> assert false)
            st
        in
        Printf.printf "  reset=%d go=%d stop=%d val=%d   -> acc = %s\n" reset go
          stop v
          (Bitvec.to_string (Oyster.Interp.get_register st "acc"));
        ignore r
      in
      List.iter feed
        [ (1, 0, 0, 0); (0, 1, 0, 3); (0, 0, 0, 2); (0, 0, 0, 1); (0, 0, 1, 0) ];
      print_endline "";
      print_endline "final accumulator value should be 8'x06 (3 + 2 + 1)."
  | _ -> prerr_endline "synthesis failed"
